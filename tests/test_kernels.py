"""Tests for the compiled per-DAE kernels (repro.kernels).

Covers the four contracts of the kernel layer:

* **Parity** — the generated per-device/whole-circuit ``q/f/dq/df``
  kernels must match the NumPy reference path on randomized states, for
  the generated-python oracle and for every compiled backend available
  on the host.
* **Trajectory equivalence** — a fixed-step chord transient run through
  the compiled sweep must match the python march within solver
  tolerance, with identical Newton iteration/factorization counts.
* **Graceful degradation** — ``kernel="auto"`` silently falls back when
  numba is masked out, while an explicit ``kernel="numba"`` raises a
  clear :class:`~repro.errors.ConfigurationError`.
* **Slow-path interop** — divergence inside a compiled sweep hands the
  step back to the python recovery ladder; failure context
  (checkpoint + partial result) is unchanged.
"""

import sys
from dataclasses import replace

import numpy as np
import pytest

from repro.circuits.library import (
    MemsVcoDae,
    T_NOMINAL,
    VcoParams,
    forced_lc_oscillator_circuit,
    lc_oscillator_circuit,
    rc_diode_mixer_circuit,
    ring_oscillator_circuit,
)
from repro.dae import VanDerPolDae
from repro.dae.ensemble import EnsembleDAE, ensemble_from_factory
from repro.errors import ConfigurationError, SimulationError
from repro.kernels import (
    build_kernel,
    maybe_kernelize_batch,
    probe_cc,
    probe_numba,
    resolve_mode,
    spec_for_dae,
)
from repro.testing.faults import FaultyDAE
from repro.transient import (
    TransientOptions,
    simulate_transient,
    simulate_transient_ensemble,
)

needs_backend = pytest.mark.skipif(
    not (probe_numba() or probe_cc()),
    reason="no compiled backend on this host (no numba, no C toolchain)",
)


def _fixture_daes():
    return {
        "vdp": VanDerPolDae(mu=0.7),
        "vco": MemsVcoDae(VcoParams.air()),
        "lc": lc_oscillator_circuit().to_dae(),
        "forced_lc": forced_lc_oscillator_circuit().to_dae(),
        "ring": ring_oscillator_circuit().to_dae(),
        "mixer": rc_diode_mixer_circuit().to_dae(),
    }


def _available_modes():
    modes = ["python"]
    if probe_numba():
        modes.append("numba")
    if probe_cc():
        modes.append("c")
    return modes


def _check_parity(dae, impl, rng, rtol=1e-9):
    n = dae.n
    qv = np.empty(n)
    fv = np.empty(n)
    dq = np.empty(n * n)
    df = np.empty(n * n)
    p = np.ascontiguousarray(spec_for_dae(dae)[0].params_rows[0])
    for _ in range(20):
        x = rng.uniform(-1.5, 1.5, n)
        impl.eval_qf(x, p, qv, fv)
        np.testing.assert_allclose(qv, dae.q(x), rtol=rtol, atol=1e-300)
        np.testing.assert_allclose(fv, dae.f(x), rtol=rtol, atol=1e-300)
        impl.eval_jac(x, p, dq, df)
        np.testing.assert_allclose(
            dq.reshape(n, n), dae.dq_dx(x), rtol=rtol, atol=1e-300
        )
        np.testing.assert_allclose(
            df.reshape(n, n), dae.df_dx(x), rtol=rtol, atol=1e-300
        )


class TestKernelParity:
    @pytest.mark.parametrize("name", list(_fixture_daes()))
    def test_generated_python_matches_numpy(self, name, rng):
        """The generated-python oracle matches q/f/dq/df everywhere."""
        dae = _fixture_daes()[name]
        spec, why = spec_for_dae(dae)
        assert spec is not None, why
        built = build_kernel(spec, "python")
        _check_parity(dae, built.impl, rng)

    @needs_backend
    @pytest.mark.parametrize("name", list(_fixture_daes()))
    def test_compiled_backends_match_numpy(self, name, rng):
        dae = _fixture_daes()[name]
        spec, _ = spec_for_dae(dae)
        for mode in _available_modes()[1:]:
            built = build_kernel(spec, mode)
            _check_parity(dae, built.impl, rng)

    def test_whole_circuit_residual_matches_dae(self, rng):
        """Fused step residual r = alpha*q + rhs + beta*(f - b) parity.

        Composes the residual exactly the way the compiled sweep does
        (per-component, from the circuit kernels stitched out of the MNA
        incidence data) and checks it against the CircuitDAE evaluation.
        """
        dae = rc_diode_mixer_circuit().to_dae()
        spec, _ = spec_for_dae(dae)
        built = build_kernel(spec, "python")
        n = dae.n
        p = np.ascontiguousarray(spec.params_rows[0])
        qv, fv = np.empty(n), np.empty(n)
        for _ in range(10):
            x = rng.uniform(-0.8, 0.8, n)
            t = rng.uniform(0.0, 1e-3)
            alpha = rng.uniform(1e3, 1e6)
            beta = rng.uniform(0.5, 1.0)
            rhs = rng.standard_normal(n)
            b = dae.b(t)
            built.impl.eval_qf(x, p, qv, fv)
            kernel_resid = alpha * qv + rhs + beta * (fv - b)
            ref_resid = alpha * dae.q(x) + rhs + beta * (dae.f(x) - b)
            np.testing.assert_allclose(
                kernel_resid, ref_resid, rtol=1e-9, atol=1e-12
            )

    def test_unsupported_dae_reports_reason(self):
        class OpaqueDAE:
            n = 1

        spec, why = spec_for_dae(OpaqueDAE())
        assert spec is None
        assert "OpaqueDAE" in why


class TestTrajectoryEquivalence:
    @needs_backend
    @pytest.mark.parametrize("integrator", ["be", "trap", "bdf2"])
    def test_vco_matches_python_march(self, integrator):
        dae = MemsVcoDae(VcoParams.air())
        x0 = [1.0, 0.0, 0.0, 0.0]
        horizon = 8 * T_NOMINAL

        def run(kernel):
            return simulate_transient(
                dae, x0, 0.0, horizon,
                TransientOptions(
                    integrator=integrator, dt=T_NOMINAL / 300, kernel=kernel
                ),
            )

        ref = run("python")
        com = run("auto")
        assert ref.stats["kernel"]["mode"] == "python"
        assert com.stats["kernel"]["mode"] != "python"
        assert com.stats["kernel"]["compiled_steps"] == com.stats["steps"]
        assert com.stats["kernel"]["python_steps"] == 0
        scale = np.abs(ref.x).max()
        assert np.abs(com.x - ref.x).max() / scale < 1e-9
        # Same algorithm, same policy: the chord bookkeeping must agree
        # exactly, not just the trajectory.
        assert com.stats["newton_iterations"] == ref.stats["newton_iterations"]
        assert (com.stats["jacobian_factorizations"]
                == ref.stats["jacobian_factorizations"])

    @needs_backend
    def test_ring_oscillator_matches_python_march(self):
        dae = ring_oscillator_circuit().to_dae()
        x0 = np.zeros(dae.n)
        x0[0] = 0.5

        def run(kernel):
            return simulate_transient(
                dae, x0, 0.0, 2e-5,
                TransientOptions(integrator="trap", dt=2e-8, kernel=kernel),
            )

        ref = run("python")
        com = run("auto")
        assert com.stats["kernel"]["compiled_steps"] == com.stats["steps"]
        scale = np.abs(ref.x).max()
        assert np.abs(com.x - ref.x).max() / scale < 1e-9

    @needs_backend
    def test_checkpointed_run_is_bit_identical(self):
        dae = MemsVcoDae(VcoParams.air())
        x0 = [1.0, 0.0, 0.0, 0.0]
        horizon = 6 * T_NOMINAL

        def opts(**kw):
            return TransientOptions(
                integrator="trap", dt=T_NOMINAL / 250, kernel="auto", **kw
            )

        plain = simulate_transient(dae, x0, 0.0, horizon, opts())
        chunked = simulate_transient(
            dae, x0, 0.0, horizon, opts(checkpoint_every=123)
        )
        # Checkpoint cadence chunks the compiled sweep mid-march; the
        # trajectory must not feel it.
        np.testing.assert_array_equal(plain.x, chunked.x)

    @needs_backend
    def test_resume_continues_compiled_and_bit_identical(self):
        dae = MemsVcoDae(VcoParams.air())
        x0 = [1.0, 0.0, 0.0, 0.0]
        horizon = 6 * T_NOMINAL

        def opts(**kw):
            return TransientOptions(
                integrator="trap", dt=T_NOMINAL / 250, kernel="auto",
                checkpoint_every=200, **kw
            )

        full = simulate_transient(dae, x0, 0.0, horizon, opts())
        with pytest.raises(SimulationError) as info:
            simulate_transient(dae, x0, 0.0, horizon, opts(max_steps=600))
        resumed = simulate_transient(
            dae, None, 0.0, horizon, opts(), resume_from=info.value.checkpoint
        )
        assert resumed.stats["kernel"]["compiled_steps"] > 0
        tail = np.asarray(full.x)[-np.asarray(resumed.x).shape[0]:]
        np.testing.assert_array_equal(tail, np.asarray(resumed.x))


class TestGracefulFallback:
    def test_masked_numba_fails_explicit_request(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numba", None)
        assert not probe_numba()
        with pytest.raises(ConfigurationError, match="jit"):
            resolve_mode("numba")
        dae = VanDerPolDae(mu=0.5)
        with pytest.raises(ConfigurationError, match="numba"):
            simulate_transient(
                dae, [0.5, 0.0], 0.0, 1.0,
                TransientOptions(dt=0.01, kernel="numba"),
            )

    def test_masked_numba_keeps_auto_running(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numba", None)
        dae = VanDerPolDae(mu=0.5)
        result = simulate_transient(
            dae, [0.5, 0.0], 0.0, 1.0,
            TransientOptions(dt=0.01, kernel="auto"),
        )
        info = result.stats["kernel"]
        assert info["mode"] in ("c", "python")  # silently degraded
        assert np.isfinite(np.asarray(result.x)).all()

    def test_invalid_kernel_value_raises(self):
        dae = VanDerPolDae(mu=0.5)
        with pytest.raises(ConfigurationError, match="not a valid mode"):
            simulate_transient(
                dae, [0.5, 0.0], 0.0, 1.0,
                TransientOptions(dt=0.01, kernel="fortran"),
            )

    def test_explicit_python_never_compiles(self):
        result = simulate_transient(
            VanDerPolDae(mu=0.5), [0.5, 0.0], 0.0, 1.0,
            TransientOptions(dt=0.01, kernel="python"),
        )
        info = result.stats["kernel"]
        assert info["mode"] == "python"
        assert info["compiled_steps"] == 0

    @needs_backend
    def test_adaptive_constant_forcing_compiles(self):
        result = simulate_transient(
            VanDerPolDae(mu=0.5), [0.5, 0.0], 0.0, 1.0,
            TransientOptions(dt=0.01, adaptive=True, kernel="auto"),
        )
        info = result.stats["kernel"]
        assert info["mode"] != "python"
        assert info["compiled_steps"] == result.stats["steps"]

    def test_adaptive_varying_forcing_reports_blocked_reason(self):
        dae = forced_lc_oscillator_circuit().to_dae()
        result = simulate_transient(
            dae, np.zeros(dae.n), 0.0, 2e-6,
            TransientOptions(dt=2e-8, adaptive=True, kernel="auto"),
        )
        info = result.stats["kernel"]
        if probe_numba() or probe_cc():
            assert info["mode"] == "python"
            assert "time-invariant" in info["reason"]


class TestSlowPathInterop:
    def test_ladder_engages_on_compiled_divergence(self):
        """A NaN forcing window poisons the compiled sweep mid-march;
        the kernel must hand the step back, the python ladder must run
        (dt halving to the floor), and the failure must carry the same
        structured context as a pure-python run."""
        dae = FaultyDAE(
            VanDerPolDae(mu=1.0), nan_b_window=(0.5, np.inf)
        )
        options = TransientOptions(
            integrator="trap", dt=0.01, dt_min=1e-10, kernel="auto"
        )
        with pytest.raises(SimulationError, match="underflow") as info:
            simulate_transient(dae, [2.0, 0.0], 0.0, 1.0, options)
        exc = info.value
        assert exc.checkpoint is not None
        assert exc.partial_result is not None
        assert exc.partial_result.t[-1] < 0.5
        stats = exc.partial_result.stats
        assert stats["newton_failures"] >= 1
        if probe_numba() or probe_cc():
            # The clean prefix ran compiled; the poisoned region fell
            # back to python and its failure accounting.
            assert stats["kernel"]["compiled_steps"] > 0
            assert "status" in stats["kernel"]["reason"]

    def test_qf_faults_keep_the_python_path(self):
        """Injected q/f faults must not be masked by kernelization: the
        wrapper's counters only tick on the python path, so the spec
        registry refuses to lower a FaultyDAE with q/f/df faults."""
        dae = FaultyDAE(VanDerPolDae(mu=1.0), nan_q_calls=[5])
        spec, why = spec_for_dae(dae)
        assert spec is None
        assert "fault injection" in why


class TestBatchedKernels:
    @needs_backend
    def test_envelope_kernelizes_under_auto(self):
        dae = MemsVcoDae(VcoParams.air())
        wrapped, info = maybe_kernelize_batch(dae, "auto")
        assert wrapped is not dae
        assert info["mode"] != "python"
        states = np.random.default_rng(7).uniform(-1, 1, (5, dae.n))
        np.testing.assert_allclose(
            wrapped.q_batch(states), dae.q_batch(states), rtol=1e-12
        )
        np.testing.assert_allclose(
            wrapped.df_dx_batch(states), dae.df_dx_batch(states), rtol=1e-12
        )

    @needs_backend
    def test_batch_kernelize_defaults_on_under_auto(self):
        dae = MemsVcoDae(VcoParams.air())
        wrapped, info = maybe_kernelize_batch(dae, "auto", expected_batch=4)
        assert wrapped is not dae
        assert info["mode"] != "python"

    def test_batch_kernelize_python_escape_hatch(self):
        dae = MemsVcoDae(VcoParams.air())
        wrapped, info = maybe_kernelize_batch(
            dae, "python", expected_batch=4
        )
        assert wrapped is dae
        assert info["mode"] == "python"


def _vco_control_ensemble(batch):
    base = VcoParams.air()
    values = np.linspace(0.8, 2.4, batch)
    return ensemble_from_factory(
        lambda v: MemsVcoDae(replace(base, control_offset=v)),
        values,
        stacked_factory=lambda arr: MemsVcoDae(
            replace(base, control_offset=arr)
        ),
    )


class TestEnsembleCompiled:
    @needs_backend
    def test_batched_march_matches_python_lockstep(self):
        batch = 8
        ens = _vco_control_ensemble(batch)
        x0 = np.tile(np.array([1.0, 0.0, 0.0, 0.0]), (batch, 1))

        def run(kernel):
            return simulate_transient_ensemble(
                ens, x0, 0.0, 20 * T_NOMINAL,
                TransientOptions(
                    integrator="trap", dt=T_NOMINAL / 100, kernel=kernel
                ),
            )

        ref = run("python")
        com = run("auto")
        assert ref.stats["kernel"]["mode"] == "python"
        assert com.stats["kernel"]["mode"] != "python"
        assert com.stats["kernel"]["compiled_steps"] == com.stats["steps"]
        assert com.stats["kernel"]["python_steps"] == 0
        np.testing.assert_array_equal(ref.t, com.t)
        scale = np.abs(ref.x).max()
        assert np.abs(com.x - ref.x).max() / scale < 1e-9
        # Same lock-step chord policy: the bookkeeping must agree
        # exactly, down to each scenario's iteration count.
        assert (com.stats["newton_iterations"]
                == ref.stats["newton_iterations"])
        for b in range(batch):
            assert (com.stats["solver_per_scenario"][b]["iterations"]
                    == ref.stats["solver_per_scenario"][b]["iterations"])
        assert (com.stats["jacobian_factorizations"]
                == ref.stats["jacobian_factorizations"])
        assert (com.stats["solver"]["residual_evaluations"]
                == ref.stats["solver"]["residual_evaluations"])

    @needs_backend
    def test_diverging_scenarios_hand_back_to_rescue(self):
        """A NaN forcing window poisons the batched march mid-grid; the
        kernel hands the step back, the per-scenario rescue + dt-halving
        ladder runs, and the failure context matches the python path."""
        def faulty():
            return FaultyDAE(
                VanDerPolDae(mu=1.0), nan_b_window=(0.5, np.inf)
            )

        ens = EnsembleDAE.from_stacked(
            faulty(), 4, members=[faulty() for _ in range(4)]
        )
        x0 = np.array(
            [[2.0, 0.0], [1.9, 0.05], [1.8, 0.1], [1.7, 0.15]]
        )
        options = TransientOptions(
            integrator="trap", dt=0.01, dt_min=1e-10, kernel="auto"
        )
        with pytest.raises(SimulationError, match="underflow") as info:
            simulate_transient_ensemble(ens, x0, 0.0, 1.0, options)
        exc = info.value
        assert exc.partial_result is not None
        assert exc.partial_result.t[-1] < 0.5
        stats = exc.partial_result.stats
        assert stats["newton_failures"] >= 1
        assert stats["kernel"]["compiled_steps"] > 0
        assert "status" in stats["kernel"]["reason"]


class TestAdaptiveCompiled:
    @needs_backend
    def test_adaptive_dt_sequence_matches_python(self):
        # rtol loose enough that the error controller actually rejects
        # steps; horizon short enough that ulp-level differences between
        # the python and kernel linear solves never reach the dt
        # decisions, so the sequences must agree to the bit.
        dae = MemsVcoDae(VcoParams.air(), constant_control=True)
        x0 = [1.0, 0.0, 0.0, 0.0]
        horizon = T_NOMINAL / 2

        def run(kernel):
            return simulate_transient(
                dae, x0, 0.0, horizon,
                TransientOptions(
                    integrator="trap", dt=T_NOMINAL / 500, adaptive=True,
                    rtol=1e-4, kernel=kernel, max_steps=500000,
                ),
            )

        ref = run("python")
        com = run("auto")
        assert com.stats["kernel"]["mode"] != "python"
        assert com.stats["kernel"]["compiled_steps"] == com.stats["steps"]
        # The in-kernel local-error controller replays the python dt
        # decisions exactly: same accepted times, same rejections.
        np.testing.assert_array_equal(np.asarray(ref.t), np.asarray(com.t))
        assert ref.stats["rejected_steps"] > 0
        assert com.stats["rejected_steps"] == ref.stats["rejected_steps"]
        assert (com.stats["newton_iterations"]
                == ref.stats["newton_iterations"])
        assert (com.stats["jacobian_factorizations"]
                == ref.stats["jacobian_factorizations"])
        scale = np.abs(np.asarray(ref.x)).max()
        assert np.abs(np.asarray(com.x) - np.asarray(ref.x)).max() / scale < 1e-9

    @needs_backend
    def test_adaptive_checkpoint_cadence_is_bit_identical(self):
        dae = MemsVcoDae(VcoParams.air(), constant_control=True)
        x0 = [1.0, 0.0, 0.0, 0.0]
        horizon = 3 * T_NOMINAL

        def opts(**kw):
            return TransientOptions(
                integrator="trap", dt=T_NOMINAL / 400, adaptive=True,
                kernel="auto", max_steps=500000, **kw
            )

        plain = simulate_transient(dae, x0, 0.0, horizon, opts())
        chunked = simulate_transient(
            dae, x0, 0.0, horizon, opts(checkpoint_every=37)
        )
        # Cadence chunks the compiled adaptive march mid-run; the live
        # dt crosses each boundary in reg[2], so the dt sequence (and
        # with it the trajectory) must not feel the cuts.
        np.testing.assert_array_equal(
            np.asarray(plain.t), np.asarray(chunked.t)
        )
        np.testing.assert_array_equal(
            np.asarray(plain.x), np.asarray(chunked.x)
        )

    @needs_backend
    def test_adaptive_resume_is_bit_identical(self):
        dae = MemsVcoDae(VcoParams.air(), constant_control=True)
        x0 = [1.0, 0.0, 0.0, 0.0]
        horizon = 3 * T_NOMINAL

        def opts(max_steps=500000):
            return TransientOptions(
                integrator="trap", dt=T_NOMINAL / 400, adaptive=True,
                kernel="auto", checkpoint_every=50, max_steps=max_steps,
            )

        full = simulate_transient(dae, x0, 0.0, horizon, opts())
        with pytest.raises(SimulationError) as info:
            simulate_transient(
                dae, x0, 0.0, horizon, opts(max_steps=120)
            )
        resumed = simulate_transient(
            dae, None, 0.0, horizon, opts(),
            resume_from=info.value.checkpoint,
        )
        assert resumed.stats["kernel"]["compiled_steps"] > 0
        n_tail = np.asarray(resumed.x).shape[0]
        np.testing.assert_array_equal(
            np.asarray(full.t)[-n_tail:], np.asarray(resumed.t)
        )
        np.testing.assert_array_equal(
            np.asarray(full.x)[-n_tail:], np.asarray(resumed.x)
        )


class TestWarmStartCompiled:
    @needs_backend
    def test_warm_compiled_run_zero_refactorizations(self):
        from repro import api

        def request(x0, t0, t1):
            return api.TransientRequest(
                dae=VanDerPolDae(mu=0.2), x0=x0, t_start=t0, t_stop=t1,
                options=TransientOptions(
                    integrator="trap", dt=0.02, kernel="auto"
                ),
            )

        cold_request = request(np.array([2.0, 0.0]), 0.0, 4.0)
        cold = api.run(cold_request)
        assert cold.stats["kernel"]["mode"] != "python"
        seed = cold_request.extract_warm_start(cold)
        warm = api.run(request(None, 4.0, 8.0), warm_start=seed)
        info = warm.stats["kernel"]
        assert info["mode"] != "python"
        assert info["compiled_steps"] == warm.stats["steps"]
        # The adopted frozen factorisation carries the whole march:
        # the warm contract (zero refactorisations) stays observable
        # through the compiled path.
        assert warm.stats["solver"]["factorizations"] == 0
        assert warm.stats["jacobian_factorizations"] == 0
        assert np.array_equal(warm.x[0], cold.x[-1])
