"""Ring oscillator: a second autonomous topology for WaMPDE generality."""

import numpy as np
import pytest

from repro.circuits.devices import TanhTransconductance
from repro.circuits.library import ring_oscillator_circuit
from repro.circuits.waveforms import DC
from repro.errors import DeviceError
from repro.linalg import finite_difference_jacobian, jacobian_error
from repro.steadystate import (
    estimate_period_from_transient,
    harmonic_balance_autonomous,
)
from repro.transient import TransientOptions, simulate_transient
from repro.wampde import oscillator_initial_condition, solve_wampde_envelope


class TestTanhTransconductance:
    def test_saturation(self):
        dev = TanhTransconductance("G1", "o", "0", "c", "0", gm=4e-3,
                                   imax=1e-3)
        assert abs(dev.output_current(10.0)) < 1e-3 + 1e-9
        assert np.isclose(dev.transconductance(0.0), 4e-3)

    def test_inverting_stamp_sign(self):
        dev = TanhTransconductance("G1", "o", "0", "c", "0", gm=1e-3,
                                   imax=1e-3)
        f = dev.f_local(np.array([0.0, 0.0, 0.5, 0.0]))
        # Positive input -> current *leaves* the output node (inverting
        # with a grounded RC load).
        assert f[0] > 0

    def test_jacobians(self):
        dev = TanhTransconductance("G1", "o", "0", "c", "0", gm=4e-3,
                                   imax=1e-3)
        u = np.array([0.3, 0.0, -0.4, 0.1])
        assert jacobian_error(
            dev.df_local(u), finite_difference_jacobian(dev.f_local, u)
        ) < 1e-6

    def test_rejects_bad_parameters(self):
        with pytest.raises(DeviceError):
            TanhTransconductance("G1", "o", "0", "c", "0", gm=-1.0, imax=1e-3)


class TestRingOscillatorCircuit:
    def test_rejects_even_stages(self):
        with pytest.raises(ValueError):
            ring_oscillator_circuit(stages=4)

    def test_netlist_size(self):
        dae = ring_oscillator_circuit(stages=3).to_dae()
        assert dae.n == 3  # three node voltages, no internal unknowns

    @pytest.fixture(scope="class")
    def ring_cycle(self):
        """Settled limit cycle of the 3-stage ring."""
        dae = ring_oscillator_circuit().to_dae()
        kick = np.array([0.1, -0.05, 0.02])
        settle = simulate_transient(
            dae, kick, 0.0, 120e-6,
            TransientOptions(integrator="trap", dt=0.05e-6),
        )
        period = estimate_period_from_transient(settle, key=0)
        tail = settle.t[-1] - period
        orbit = settle.sample(tail + period * np.arange(25) / 25)
        hb = harmonic_balance_autonomous(
            dae, 1.0 / period, orbit, num_samples=25
        )
        return dae, hb

    def test_oscillates_near_linear_prediction(self, ring_cycle):
        """3-stage RC ring: f ~ sqrt(3)/(2 pi R C), lowered by saturation."""
        _dae, hb = ring_cycle
        f_linear = np.sqrt(3.0) / (2 * np.pi * 1e3 * 1e-9)
        assert 0.3 * f_linear < hb.frequency < 1.2 * f_linear

    def test_three_phase_symmetry(self, ring_cycle):
        """The three node waveforms are the same cycle shifted by T/3."""
        _dae, hb = ring_cycle
        v1 = hb.samples[:, 0]
        v2 = hb.samples[:, 1]
        best = min(
            np.max(np.abs(np.roll(v1, shift) - v2))
            for shift in range(25)
        )
        assert best < 0.05 * (v1.max() - v1.min())

    def test_amplitude_set_by_saturation(self, ring_cycle):
        """Swing approaches +-imax*R = +-1 V."""
        _dae, hb = ring_cycle
        peak = np.abs(hb.samples[:, 0]).max()
        assert 0.5 < peak < 1.2

    def test_wampde_envelope_tracks_bias_detuning(self):
        """A slow bias current shifts the ring frequency; the WaMPDE
        envelope follows it and matches the static (constant-bias) HB
        frequencies at the forcing extremes."""
        from repro.circuits.waveforms import Sine

        unbiased = ring_oscillator_circuit(bias=DC(0.0)).to_dae()
        samples, f0 = oscillator_initial_condition(
            unbiased, num_t1=25, period_guess=4e-6,
            perturbation=np.array([0.1, -0.05, 0.02]),
        )
        # Slow bias modulation: period = 40 oscillation cycles.
        period2 = 40.0 / f0
        forced = ring_oscillator_circuit(
            bias=Sine(amplitude=4e-4, frequency=1.0 / period2)
        ).to_dae()
        env = solve_wampde_envelope(
            forced, samples, f0, 0.0, 1.5 * period2, 300
        )
        # Frequency must respond to the bias...
        assert env.omega.max() / env.omega.min() > 1.005
        # ...and agree with the static tuning at the bias extremes.
        static = ring_oscillator_circuit(bias=DC(4e-4)).to_dae()
        s_samples, s_f0 = oscillator_initial_condition(
            static, num_t1=25, period_guess=1.0 / f0,
            perturbation=np.array([0.1, -0.05, 0.02]),
        )
        peak_idx = np.argmin(np.abs(env.t2 - 0.25 * period2))
        assert abs(env.omega[peak_idx] - s_f0) / s_f0 < 0.02
