"""Tests for the DAE abstraction and manufactured systems."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dae import (
    ForcedDecayDae,
    FunctionDAE,
    HarmonicOscillatorDae,
    LinearRCDae,
    ScaledDAE,
    VanDerPolDae,
)
from repro.linalg import finite_difference_jacobian, jacobian_error

finite_states = st.lists(
    st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
    min_size=2,
    max_size=2,
)


class TestFunctionDAE:
    def make(self):
        return FunctionDAE(
            n=2,
            q=lambda x: np.array([2.0 * x[0], x[1]]),
            f=lambda x: np.array([x[0] + x[1], -x[0]]),
            b=lambda t: np.array([np.sin(t), 0.0]),
            dq_dx=lambda x: np.diag([2.0, 1.0]),
            df_dx=lambda x: np.array([[1.0, 1.0], [-1.0, 0.0]]),
            variable_names=("a", "b"),
        )

    def test_delegation(self):
        dae = self.make()
        x = np.array([1.0, 2.0])
        np.testing.assert_allclose(dae.q(x), [2.0, 2.0])
        np.testing.assert_allclose(dae.f(x), [3.0, -1.0])
        np.testing.assert_allclose(dae.b(0.0), [0.0, 0.0])

    def test_variable_index(self):
        dae = self.make()
        assert dae.variable_index("b") == 1
        with pytest.raises(KeyError):
            dae.variable_index("missing")

    def test_default_variable_names(self):
        dae = FunctionDAE(
            1,
            q=lambda x: x,
            f=lambda x: x,
            b=lambda t: np.zeros(1),
            dq_dx=lambda x: np.eye(1),
            df_dx=lambda x: np.eye(1),
        )
        assert dae.variable_names == ("x0",)

    def test_rejects_wrong_name_count(self):
        with pytest.raises(ValueError, match="names"):
            FunctionDAE(
                2,
                q=lambda x: x,
                f=lambda x: x,
                b=lambda t: np.zeros(2),
                dq_dx=lambda x: np.eye(2),
                df_dx=lambda x: np.eye(2),
                variable_names=("only_one",),
            )

    def test_batch_defaults_match_pointwise(self, rng):
        dae = self.make()
        states = rng.normal(size=(5, 2))
        np.testing.assert_allclose(
            dae.q_batch(states), np.stack([dae.q(s) for s in states])
        )
        np.testing.assert_allclose(
            dae.f_batch(states), np.stack([dae.f(s) for s in states])
        )
        np.testing.assert_allclose(
            dae.dq_dx_batch(states), np.stack([dae.dq_dx(s) for s in states])
        )
        times = rng.normal(size=4)
        np.testing.assert_allclose(
            dae.b_batch(times), np.stack([dae.b(t) for t in times])
        )

    def test_residual_helper(self):
        dae = self.make()
        x = np.array([1.0, 0.0])
        xdot_q = np.array([0.5, 0.5])
        expected = xdot_q + dae.f(x) - dae.b(0.3)
        np.testing.assert_allclose(dae.residual(x, xdot_q, 0.3), expected)


class TestLinearRC:
    def test_steady_state_satisfies_ode(self):
        dae = LinearRCDae(resistance=2.0, capacitance=0.5, amplitude=1.0, omega=3.0)
        t = np.linspace(0, 5, 300)
        v = dae.steady_state_response(t)
        dvdt = np.gradient(v, t)
        residual = dae.capacitance * dvdt + v / dae.resistance - np.cos(3.0 * t)
        # np.gradient is only O(h^2); loose tolerance.
        assert np.max(np.abs(residual[5:-5])) < 5e-3

    def test_transient_response_initial_value(self):
        dae = LinearRCDae()
        assert np.isclose(dae.transient_response(0.0, v0=0.7), 0.7)

    def test_transient_decays_to_steady(self):
        dae = LinearRCDae(resistance=1.0, capacitance=0.1)
        t = np.array([5.0])
        np.testing.assert_allclose(
            dae.transient_response(t, v0=5.0),
            dae.steady_state_response(t),
            atol=1e-8,
        )


class TestHarmonicOscillator:
    def test_exact_solution_satisfies_energy(self):
        dae = HarmonicOscillatorDae(inductance=2.0, capacitance=0.5)
        t = np.linspace(0, 10, 100)
        states = dae.exact(t, v0=1.0, i0=0.3)
        energies = [dae.energy(s) for s in states]
        np.testing.assert_allclose(energies, energies[0], rtol=1e-12)

    def test_omega0(self):
        dae = HarmonicOscillatorDae(inductance=4.0, capacitance=0.25)
        assert np.isclose(dae.omega0, 1.0)

    def test_exact_period(self):
        dae = HarmonicOscillatorDae()
        period = 2 * np.pi / dae.omega0
        np.testing.assert_allclose(
            dae.exact(period, 1.0, 0.5), dae.exact(0.0, 1.0, 0.5), atol=1e-12
        )


class TestVanDerPol:
    @given(finite_states)
    def test_jacobians_match_finite_difference(self, state):
        dae = VanDerPolDae(mu=0.7)
        x = np.asarray(state)
        assert jacobian_error(
            dae.df_dx(x), finite_difference_jacobian(dae.f, x)
        ) < 1e-6
        assert jacobian_error(
            dae.dq_dx(x), finite_difference_jacobian(dae.q, x)
        ) < 1e-6

    def test_batch_matches_pointwise(self, rng):
        dae = VanDerPolDae(mu=0.3)
        states = rng.normal(size=(7, 2))
        np.testing.assert_allclose(
            dae.f_batch(states), np.stack([dae.f(s) for s in states])
        )
        np.testing.assert_allclose(
            dae.df_dx_batch(states), np.stack([dae.df_dx(s) for s in states])
        )

    def test_unforced(self):
        dae = VanDerPolDae()
        np.testing.assert_allclose(dae.b(12.3), [0.0, 0.0])

    def test_frequency_estimate_below_unity(self):
        assert VanDerPolDae(mu=0.5).small_mu_angular_frequency() < 1.0

    def test_rejects_negative_mu(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            VanDerPolDae(mu=-1.0)


class TestForcedDecay:
    def test_exact_constant_forcing(self):
        dae = ForcedDecayDae(rate=2.0, forcing=lambda t: 4.0)
        t = np.linspace(0, 3, 10)
        x = dae.exact_constant_forcing(t, x0=0.0, u=4.0)
        np.testing.assert_allclose(x[-1], 2.0, atol=1e-2)

    def test_forcing_callable(self):
        dae = ForcedDecayDae(rate=1.0, forcing=np.cos)
        np.testing.assert_allclose(dae.b(0.0), [1.0])


class TestScaledDAE:
    def test_solution_equivalence(self):
        """Integrating the scaled system must reproduce the unscaled one."""
        from repro.transient import TransientOptions, simulate_transient

        inner = LinearRCDae(resistance=2.0, capacitance=1e-6, omega=1e5)
        scaled = ScaledDAE(inner, variable_scale=2.0, time_scale=1e-5)
        x0 = np.array([0.3])
        result = simulate_transient(
            scaled,
            scaled.from_inner(x0),
            0.0,
            1.0,  # = 1e-5 s of real time
            TransientOptions(integrator="trap", dt=1e-3),
        )
        v_scaled = scaled.to_inner(result.final_state())
        exact = inner.transient_response(1e-5, v0=0.3)
        np.testing.assert_allclose(v_scaled[0], exact, rtol=1e-5)

    def test_jacobian_scaling(self):
        inner = VanDerPolDae(mu=0.4)
        scaled = ScaledDAE(
            inner, variable_scale=[2.0, 0.5], time_scale=3.0,
            equation_scale=[1.0, 4.0],
        )
        y = np.array([0.7, -0.4])
        numeric = finite_difference_jacobian(scaled.f, y)
        assert jacobian_error(scaled.df_dx(y), numeric) < 1e-6
        numeric_q = finite_difference_jacobian(scaled.q, y)
        assert jacobian_error(scaled.dq_dx(y), numeric_q) < 1e-6

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            ScaledDAE(VanDerPolDae(), variable_scale=[1.0, -1.0])

    def test_rejects_wrong_scale_length(self):
        with pytest.raises(ValueError):
            ScaledDAE(VanDerPolDae(), variable_scale=[1.0, 2.0, 3.0])
