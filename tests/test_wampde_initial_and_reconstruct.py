"""Tests for oscillator initialisation and univariate reconstruction."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.wampde import (
    oscillator_initial_condition,
    reconstruct_univariate,
    solve_wampde_envelope,
)


class TestOscillatorInitialCondition:
    def test_vdp_pipeline(self, vdp):
        samples, freq = oscillator_initial_condition(
            vdp, num_t1=25, period_guess=6.0, settle_cycles=12
        )
        expected = vdp.small_mu_angular_frequency() / (2 * np.pi)
        assert abs(freq - expected) / expected < 5e-3
        assert samples.shape == (25, 2)
        # Limit-cycle amplitude ~2.
        assert abs(samples[:, 0].max() - 2.0) < 0.1

    def test_requires_period_guess(self, vdp):
        with pytest.raises(SimulationError, match="period_guess"):
            oscillator_initial_condition(vdp, num_t1=25)

    def test_phase_condition_satisfied(self, vdp):
        from repro.phase_conditions import FourierImagAnchor

        samples, _freq = oscillator_initial_condition(
            vdp, num_t1=25, period_guess=6.0, settle_cycles=12,
            phase_condition="fourier",
        )
        anchor = FourierImagAnchor(variable=0, harmonic=1)
        assert abs(anchor.residual(samples)) < 1e-7

    def test_custom_perturbation(self, vdp):
        samples, freq = oscillator_initial_condition(
            vdp, num_t1=15, period_guess=6.0, settle_cycles=12,
            perturbation=np.array([0.5, 0.0]),
        )
        assert freq > 0

    def test_rejects_bad_perturbation_shape(self, vdp):
        with pytest.raises(SimulationError, match="perturbation"):
            oscillator_initial_condition(
                vdp, num_t1=15, period_guess=6.0,
                perturbation=np.zeros(5),
            )

    def test_vco_frequency_anchor(self, vco_initial_condition):
        """Paper: 1.5 V control -> ~0.75 MHz free-running."""
        _params, _samples, f0 = vco_initial_condition
        assert abs(f0 - 0.75e6) / 0.75e6 < 0.01


class TestReconstruction:
    def test_matches_closed_form_for_harmonic(self, lc):
        """The LC oscillator envelope reconstructs cos(omega0 t) exactly."""
        from repro.spectral import collocation_grid

        grid = collocation_grid(15, 1.0)
        period = 2 * np.pi / lc.omega0
        samples = np.stack(
            [np.cos(2 * np.pi * grid), np.sin(2 * np.pi * grid)], axis=1
        )
        env = solve_wampde_envelope(
            lc, samples, 1.0 / period, 0.0, 10.0, 50
        )
        times = np.linspace(0.0, 10.0, 500)
        rec = reconstruct_univariate(env, 0, times)
        np.testing.assert_allclose(rec, np.cos(lc.omega0 * times), atol=1e-3)

    def test_key_by_name(self, lc):
        from repro.spectral import collocation_grid

        grid = collocation_grid(15, 1.0)
        period = 2 * np.pi / lc.omega0
        samples = np.stack(
            [np.cos(2 * np.pi * grid), np.sin(2 * np.pi * grid)], axis=1
        )
        env = solve_wampde_envelope(lc, samples, 1.0 / period, 0.0, 5.0, 25)
        times = np.linspace(0.0, 5.0, 100)
        np.testing.assert_allclose(
            reconstruct_univariate(env, "v", times),
            reconstruct_univariate(env, 0, times),
            atol=1e-12,
        )

    def test_chunked_evaluation_consistent(self, lc):
        from repro.spectral import collocation_grid

        grid = collocation_grid(15, 1.0)
        period = 2 * np.pi / lc.omega0
        samples = np.stack(
            [np.cos(2 * np.pi * grid), np.sin(2 * np.pi * grid)], axis=1
        )
        env = solve_wampde_envelope(lc, samples, 1.0 / period, 0.0, 5.0, 25)
        times = np.linspace(0.0, 5.0, 1000)
        full = reconstruct_univariate(env, 0, times, chunk=10**6)
        small = reconstruct_univariate(env, 0, times, chunk=64)
        np.testing.assert_allclose(full, small, atol=1e-14)
