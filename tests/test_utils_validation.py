"""Tests for repro.utils.validation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.utils.validation import (
    as_1d_array,
    as_2d_array,
    check_finite,
    check_in_range,
    check_nonnegative,
    check_odd,
    check_positive,
)


class TestCheckFinite:
    def test_accepts_scalar(self):
        assert check_finite(1.5) == 1.5

    def test_accepts_array(self):
        arr = np.array([1.0, 2.0])
        assert check_finite(arr) is arr

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="finite"):
            check_finite(np.nan)

    def test_rejects_inf_in_array(self):
        with pytest.raises(ValidationError, match="myname"):
            check_finite([1.0, np.inf], name="myname")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.1) == 0.1

    @pytest.mark.parametrize("bad", [0.0, -1.0, np.nan, np.inf, "x", None])
    def test_rejects_nonpositive_and_nonnumbers(self, bad):
        with pytest.raises(ValidationError):
            check_positive(bad)

    @given(st.floats(min_value=1e-300, max_value=1e300))
    def test_accepts_any_positive_float(self, value):
        assert check_positive(value) == value


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative(0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_nonnegative(-1e-30)


class TestCheckInRange:
    def test_accepts_inside(self):
        assert check_in_range(0.5, 0.0, 1.0) == 0.5

    def test_accepts_boundary(self):
        assert check_in_range(1.0, 0.0, 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValidationError, match="lie in"):
            check_in_range(1.5, 0.0, 1.0)


class TestCheckOdd:
    @pytest.mark.parametrize("value", [1, 3, 25, 101])
    def test_accepts_odd(self, value):
        assert check_odd(value) == value

    @pytest.mark.parametrize("bad", [0, 2, 24, 2.5, "3"])
    def test_rejects_even_and_nonint(self, bad):
        with pytest.raises(ValidationError):
            check_odd(bad)

    def test_accepts_numpy_integer(self):
        assert check_odd(np.int64(7)) == 7


class TestAsArrays:
    def test_scalar_becomes_1d(self):
        assert as_1d_array(3.0).shape == (1,)

    def test_list_to_1d(self):
        np.testing.assert_array_equal(as_1d_array([1, 2]), [1.0, 2.0])

    def test_rejects_2d_for_1d(self):
        with pytest.raises(ValidationError, match="1-D"):
            as_1d_array([[1.0, 2.0]])

    def test_2d_roundtrip(self):
        arr = as_2d_array([[1.0, 2.0], [3.0, 4.0]])
        assert arr.shape == (2, 2)

    def test_rejects_1d_for_2d(self):
        with pytest.raises(ValidationError, match="2-D"):
            as_2d_array([1.0, 2.0])
