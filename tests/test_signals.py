"""Tests for the §3 signal toolkit (Figs 1-6 closed forms)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.signals import (
    bivariate_sample_count,
    fm_alternative_bivariate,
    fm_alternative_phi,
    fm_instantaneous_frequency,
    fm_signal,
    fm_unwarped_bivariate,
    fm_warped_bivariate,
    fm_warping_phi,
    grid_undulation_count,
    reconstruction_error_two_tone,
    transient_sample_count,
    two_tone_bivariate,
    two_tone_signal,
    undulation_count,
)
from repro.signals.fm import F0_PAPER, F2_PAPER, K_PAPER

times = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestTwoTone:
    @given(times)
    def test_diagonal_identity(self, t):
        """y(t) = yhat(t, t) — paper eq. (1) vs (2)."""
        np.testing.assert_allclose(
            two_tone_signal(t), two_tone_bivariate(t, t), atol=1e-12
        )

    def test_biperiodicity(self):
        t1, t2 = 0.013, 0.37
        np.testing.assert_allclose(
            two_tone_bivariate(t1, t2),
            two_tone_bivariate(t1 + 0.02, t2 + 1.0),
            atol=1e-12,
        )

    def test_paper_modulation_structure(self):
        """50 fast cycles inside one slow period."""
        t = np.linspace(0, 1, 20001)
        y = two_tone_signal(t)
        crossings = np.sum((y[:-1] < 0) & (y[1:] >= 0))
        # ~50 fast cycles, modulated: allow the modulation-envelope zeros.
        assert 48 <= crossings <= 52

    def test_paper_sample_counts(self):
        """Paper: 750 transient samples vs 225 bivariate samples."""
        assert transient_sample_count() == 750
        assert bivariate_sample_count() == 225

    def test_sample_count_scales_with_separation(self):
        assert transient_sample_count(period1=0.001, period2=1.0) == 15000


class TestFmSignal:
    @given(st.floats(min_value=0.0, max_value=5e-5))
    def test_warped_identity(self, t):
        """x(t) = xhat2(phi(t), t) — paper eq. (8)."""
        np.testing.assert_allclose(
            fm_signal(t),
            fm_warped_bivariate(np.mod(fm_warping_phi(t), 1.0)),
            atol=1e-9,
        )

    @given(st.floats(min_value=0.0, max_value=5e-5))
    def test_unwarped_identity(self, t):
        """x(t) = xhat1(t, t) — paper eq. (5)."""
        np.testing.assert_allclose(
            fm_signal(t), fm_unwarped_bivariate(t, t), atol=1e-9
        )

    @given(st.floats(min_value=0.0, max_value=5e-5))
    def test_alternative_identity(self, t):
        """x(t) = xhat3(phi3(t), t) — paper eq. (10)-(11)."""
        np.testing.assert_allclose(
            fm_signal(t),
            fm_alternative_bivariate(fm_alternative_phi(t), t),
            atol=1e-9,
        )

    def test_phi_derivative_is_instantaneous_frequency(self):
        """d phi/dt == f(t) of paper eq. (4)."""
        t = np.linspace(0, 5e-5, 200)
        step = 1e-12
        numeric = (fm_warping_phi(t + step) - fm_warping_phi(t - step)) / (
            2 * step
        )
        np.testing.assert_allclose(
            numeric, fm_instantaneous_frequency(t), rtol=1e-3
        )

    def test_alternative_phi_differs_by_f2(self):
        """The local-frequency ambiguity is exactly f2 (paper §3)."""
        t = np.linspace(0, 5e-5, 50)
        step = 1e-12
        d_phi3 = (fm_alternative_phi(t + step) - fm_alternative_phi(t - step)) / (
            2 * step
        )
        np.testing.assert_allclose(
            fm_instantaneous_frequency(t) - d_phi3, F2_PAPER, rtol=1e-2
        )

    def test_frequency_swing(self):
        """f(t) spans f0 +- k*f2 = 1 MHz +- ~0.5 MHz."""
        t = np.linspace(0, 1 / F2_PAPER, 1000)
        freq = fm_instantaneous_frequency(t)
        assert np.isclose(freq.max(), F0_PAPER + K_PAPER * F2_PAPER, rtol=1e-3)
        assert np.isclose(freq.min(), F0_PAPER - K_PAPER * F2_PAPER, rtol=1e-3)


class TestUndulationCounts:
    def test_pure_sine_count(self):
        t = np.linspace(0, 1, 400)
        assert undulation_count(np.sin(2 * np.pi * 3 * t)) == 6  # 2 per cycle

    def test_constant_has_none(self):
        assert undulation_count(np.ones(50)) == 0

    def test_unwarped_fm_undulates_along_t2(self):
        """Paper Fig 5: xhat1 has ~k/(2 pi) = 4 oscillations along t2."""
        t2 = np.linspace(0, 1 / F2_PAPER, 400, endpoint=False)
        grid = fm_unwarped_bivariate(0.0, t2[:, None])
        count = grid_undulation_count(grid.reshape(-1, 1), axis=0)
        expected_oscillations = K_PAPER / (2 * np.pi)  # = 4
        assert count >= 2 * expected_oscillations - 1

    def test_warped_fm_flat_along_t2(self):
        """Paper Fig 6: xhat2 is constant along t2 — zero undulations."""
        t1 = np.linspace(0, 1, 31)
        t2 = np.linspace(0, 1 / F2_PAPER, 31)
        grid = fm_warped_bivariate(t1[None, :], t2[:, None])
        assert grid_undulation_count(grid, axis=0) == 0

    def test_grid_requires_2d(self):
        with pytest.raises(ValueError):
            grid_undulation_count(np.zeros(5))


class TestReconstructionCost:
    def test_compact_grid_is_accurate(self):
        """15x15 bivariate samples reconstruct y(t) to machine precision."""
        assert reconstruction_error_two_tone(15) < 1e-10

    def test_rejects_even_grid(self):
        with pytest.raises(ValueError):
            reconstruction_error_two_tone(14)

    def test_minimal_grid_still_exact(self):
        """The signal has 1 harmonic per axis: 3x3 samples suffice."""
        assert reconstruction_error_two_tone(3) < 1e-10
