"""Tests for repro.utils: grids, tables, csvio, ascii_plot, timing."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils import (
    WallTimer,
    ascii_plot,
    format_table,
    log_grid,
    periodic_grid,
    read_csv,
    uniform_grid,
    write_csv,
)


class TestGrids:
    def test_uniform_grid_endpoints(self):
        grid = uniform_grid(1.0, 2.0, 5)
        assert grid[0] == 1.0 and grid[-1] == 2.0 and grid.size == 5

    def test_uniform_grid_rejects_single_point(self):
        with pytest.raises(ValidationError):
            uniform_grid(0.0, 1.0, 1)

    def test_uniform_grid_rejects_reversed(self):
        with pytest.raises(ValidationError):
            uniform_grid(2.0, 1.0, 5)

    def test_periodic_grid_excludes_endpoint(self):
        grid = periodic_grid(1.0, 4)
        np.testing.assert_allclose(grid, [0.0, 0.25, 0.5, 0.75])

    def test_periodic_grid_spacing(self):
        grid = periodic_grid(2.0, 5)
        np.testing.assert_allclose(np.diff(grid), 0.4)

    def test_log_grid_positive_only(self):
        with pytest.raises(ValidationError):
            log_grid(0.0, 1.0, 3)

    def test_log_grid_geometric(self):
        grid = log_grid(1.0, 100.0, 3)
        np.testing.assert_allclose(grid, [1.0, 10.0, 100.0])


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_title(self):
        text = format_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["v"], [[1.23456789]], float_format="{:.2f}")
        assert "1.23" in text


class TestCsvIo:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "out.csv"
        t = np.linspace(0, 1, 5)
        y = t**2
        write_csv(path, ["t", "y"], [t, y])
        headers, cols = read_csv(path)
        assert headers == ["t", "y"]
        np.testing.assert_allclose(cols[0], t)
        np.testing.assert_allclose(cols[1], y)

    def test_rejects_mismatched_headers(self, tmp_path):
        with pytest.raises(ValueError, match="headers"):
            write_csv(tmp_path / "x.csv", ["a"], [np.arange(3), np.arange(3)])

    def test_rejects_unequal_columns(self, tmp_path):
        with pytest.raises(ValueError, match="unequal"):
            write_csv(tmp_path / "x.csv", ["a", "b"], [np.arange(3), np.arange(4)])

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "sub" / "dir" / "out.csv"
        write_csv(path, ["t"], [np.arange(2)])
        assert path.exists()


class TestAsciiPlot:
    def test_contains_data_markers(self):
        t = np.linspace(0, 1, 50)
        text = ascii_plot(t, np.sin(2 * np.pi * t), width=40, height=10)
        assert "*" in text

    def test_title_and_labels(self):
        text = ascii_plot([0, 1], [0, 1], title="T", xlabel="x", ylabel="y")
        assert "T" in text and "x" in text and "y" in text

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_plot([0, 1], [0, 1, 2])

    def test_constant_signal_does_not_crash(self):
        text = ascii_plot([0, 1, 2], [1.0, 1.0, 1.0])
        assert "*" in text


class TestWallTimer:
    def test_measures_nonnegative(self):
        with WallTimer() as timer:
            sum(range(100))
        assert timer.elapsed >= 0.0

    def test_restart_resets(self):
        with WallTimer() as timer:
            pass
        timer.restart()
        assert timer.elapsed == 0.0
