"""Tests for phase conditions (paper eq. 20 and §3 alternatives)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PhaseConditionError
from repro.phase_conditions import (
    DerivativeAnchor,
    FourierImagAnchor,
    ValueAnchor,
    as_phase_condition,
)
from repro.spectral import collocation_grid

odd_sizes = st.integers(min_value=2, max_value=12).map(lambda m: 2 * m + 1)


def cosine_samples(num, phase=0.0, variable_count=2):
    """(N, n) samples whose variable 0 is cos(2 pi t1 + phase)."""
    grid = collocation_grid(num, 1.0)
    samples = np.zeros((num, variable_count))
    samples[:, 0] = np.cos(2 * np.pi * grid + phase)
    samples[:, 1] = np.sin(2 * np.pi * grid)
    return samples


class TestValueAnchor:
    def test_residual_zero_when_matching(self):
        samples = cosine_samples(9)
        anchor = ValueAnchor(variable=0, target=1.0, sample_index=0)
        assert abs(anchor.residual(samples)) < 1e-12

    def test_residual_detects_shift(self):
        samples = cosine_samples(9, phase=0.5)
        anchor = ValueAnchor(variable=0, target=1.0, sample_index=0)
        assert abs(anchor.residual(samples)) > 0.1

    def test_gradient_selects_single_entry(self):
        anchor = ValueAnchor(variable=1, target=0.0, sample_index=2)
        grad = anchor.gradient(5, 3)
        assert grad.shape == (15,)
        assert grad[2 * 3 + 1] == 1.0
        assert np.count_nonzero(grad) == 1

    def test_out_of_range_sample_index(self):
        anchor = ValueAnchor(sample_index=10)
        with pytest.raises(PhaseConditionError):
            anchor.weights(5)


class TestDerivativeAnchor:
    def test_zero_at_cosine_peak(self):
        """cos has an extremum at t1=0, so the derivative anchor is met."""
        samples = cosine_samples(11)
        anchor = DerivativeAnchor(variable=0)
        assert abs(anchor.residual(samples)) < 1e-9

    def test_nonzero_when_shifted(self):
        samples = cosine_samples(11, phase=0.7)
        anchor = DerivativeAnchor(variable=0)
        assert abs(anchor.residual(samples)) > 1.0

    def test_gradient_is_diffmat_row(self):
        from repro.spectral import fourier_differentiation_matrix

        anchor = DerivativeAnchor(variable=0, sample_index=3)
        weights = anchor.weights(7)
        diffmat = fourier_differentiation_matrix(7, 1.0)
        np.testing.assert_allclose(weights, diffmat[3])

    @given(odd_sizes)
    def test_derivative_exact_for_sine(self, num):
        """Weights dotted with sin samples equal 2*pi*cos at the anchor."""
        grid = collocation_grid(num, 1.0)
        samples = np.sin(2 * np.pi * grid)[:, None]
        anchor = DerivativeAnchor(variable=0, sample_index=0)
        residual = anchor.residual(samples)
        np.testing.assert_allclose(residual, 2 * np.pi, rtol=1e-8)


class TestFourierImagAnchor:
    def test_zero_for_pure_cosine(self):
        samples = cosine_samples(11)
        anchor = FourierImagAnchor(variable=0, harmonic=1)
        assert abs(anchor.residual(samples)) < 1e-12

    def test_detects_sine_component(self):
        grid = collocation_grid(11, 1.0)
        samples = np.sin(2 * np.pi * grid)[:, None]
        anchor = FourierImagAnchor(variable=0, harmonic=1)
        # Im of X_1 for sin is -1/2.
        np.testing.assert_allclose(anchor.residual(samples), -0.5, atol=1e-12)

    def test_rejects_harmonic_zero(self):
        with pytest.raises(PhaseConditionError):
            FourierImagAnchor(harmonic=0)

    def test_rejects_unrepresentable_harmonic(self):
        anchor = FourierImagAnchor(harmonic=7)
        with pytest.raises(PhaseConditionError):
            anchor.weights(9)  # max harmonic is 4

    def test_matches_fft_computation(self, rng):
        num = 13
        samples = rng.normal(size=(num, 1))
        anchor = FourierImagAnchor(variable=0, harmonic=2)
        from repro.spectral import samples_to_coefficients

        coeffs = samples_to_coefficients(samples[:, 0])
        expected = coeffs[num // 2 + 2].imag
        np.testing.assert_allclose(anchor.residual(samples), expected,
                                   atol=1e-12)


class TestLinearity:
    """All conditions are linear: residual(X) == gradient . X - target."""

    @pytest.mark.parametrize(
        "condition",
        [
            ValueAnchor(variable=1, target=0.3, sample_index=2),
            DerivativeAnchor(variable=0, target=-0.1, sample_index=1),
            FourierImagAnchor(variable=1, harmonic=2, target=0.05),
        ],
    )
    def test_gradient_consistency(self, condition, rng):
        num, n_vars = 9, 3
        samples = rng.normal(size=(num, n_vars))
        grad = condition.gradient(num, n_vars)
        np.testing.assert_allclose(
            condition.residual(samples),
            grad @ samples.ravel() - condition.target,
            atol=1e-12,
        )


class TestCoercion:
    def test_string_specs(self):
        assert isinstance(as_phase_condition("derivative"), DerivativeAnchor)
        assert isinstance(as_phase_condition("value"), ValueAnchor)
        assert isinstance(as_phase_condition("fourier"), FourierImagAnchor)

    def test_variable_forwarded(self):
        condition = as_phase_condition("derivative", variable=3)
        assert condition.variable == 3

    def test_passthrough(self):
        condition = DerivativeAnchor()
        assert as_phase_condition(condition) is condition

    def test_unknown_spec_raises(self):
        with pytest.raises(PhaseConditionError):
            as_phase_condition("bogus")
