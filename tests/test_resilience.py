"""Fault-injection tests for the solver resilience layer.

Every recovery-ladder rung is exercised deterministically through
:mod:`repro.testing.faults`: injection sites are keyed by 0-based call
indices (or forcing-time windows), so the same evaluation goes bad on
every run, platform and thread count.  The assertions pin down the
*escalation order* — which rungs ran, in which order, and what the
structured :class:`~repro.resilience.recovery.RecoveryLog` recorded.
"""

import math

import numpy as np
import pytest

from repro.dae import EnsembleDAE, VanDerPolDae
from repro.errors import ConvergenceError, NonFiniteError, SimulationError
from repro.linalg.newton import NewtonOptions, newton_solve
from repro.linalg.solver_core import (
    FunctionSystem,
    SolverCore,
    SolverCoreOptions,
)
from repro.resilience import (
    GminShiftedSystem,
    PseudoTransientSystem,
    SourceScaledSystem,
    guard_dae,
    pseudo_transient_march,
)
from repro.resilience.recovery import (
    DEFAULT_CHORD_LADDER,
    DEFAULT_FULL_LADDER,
    EXTENDED_CHORD_LADDER,
    EXTENDED_FULL_LADDER,
    default_ladder,
    extended_ladder,
)
from repro.steadystate.dc import DcOptions, dc_operating_point
from repro.testing.faults import FaultyDAE, FaultyLinearSolver, FaultySystem
from repro.transient import (
    TransientOptions,
    simulate_transient,
    simulate_transient_ensemble,
)

# Fixed point of cos: the root of F(z) = z - cos(z).
COS_ROOT = 0.7390851332151607


def cos_system():
    """A contractive 3-unknown system: F(z) = z - cos(z).

    Fine for full-Newton rungs; too slow for a *fresh-factor* chord
    iteration at tight tolerances (use :func:`mild_system` there)."""

    def residual(z):
        return z - np.cos(z)

    def jacobian(z):
        return np.diag(1.0 + np.sin(z))

    return FunctionSystem(residual, jacobian)


def mild_system():
    """F(z) = z - 0.1 cos(z): the chord iteration contracts at ~0.01 per
    step, so a healthy solve converges on its first rung well inside the
    iteration budget."""

    def residual(z):
        return z - 0.1 * np.cos(z)

    def jacobian(z):
        return np.diag(1.0 + 0.1 * np.sin(z))

    return FunctionSystem(residual, jacobian)


def assert_solves_mild(result):
    assert result.converged
    gap = np.abs(result.x - 0.1 * np.cos(result.x)).max()
    assert gap < 1e-9


def make_core(mode="chord", ladder="extended", **kwargs):
    return SolverCore(SolverCoreOptions(
        mode=mode,
        ladder=ladder,
        newton=NewtonOptions(atol=1e-12, max_iterations=50),
        **kwargs,
    ))


class TestLadderVocabulary:
    def test_default_ladders_match_historical_policies(self):
        assert default_ladder("chord") == DEFAULT_CHORD_LADDER
        assert default_ladder("full") == DEFAULT_FULL_LADDER
        assert DEFAULT_CHORD_LADDER == ("chord", "full_newton")
        assert DEFAULT_FULL_LADDER == ("newton", "full_newton")

    def test_extended_ladders(self):
        assert extended_ladder("chord") == EXTENDED_CHORD_LADDER
        assert extended_ladder("full") == EXTENDED_FULL_LADDER
        assert EXTENDED_CHORD_LADDER[-1] == "continuation"
        assert EXTENDED_FULL_LADDER[-1] == "continuation"

    def test_unknown_ladder_string_rejected(self):
        with pytest.raises(ValueError, match="ladder"):
            SolverCore(SolverCoreOptions(ladder="bogus"))

    def test_unknown_rung_rejected(self):
        with pytest.raises(ValueError, match="unknown ladder rung"):
            SolverCore(SolverCoreOptions(ladder=("chord", "nonsense")))

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError, match="at least one rung"):
            SolverCore(SolverCoreOptions(ladder=()))


class TestRecoveryLadder:
    def test_healthy_solve_records_nothing(self):
        """First-rung convergence must keep the hot path allocation-free."""
        core = make_core()
        result = core.solve(FaultySystem(mild_system()), np.zeros(3))
        assert_solves_mild(result)
        assert not core.recovery
        assert core.recovery.total_attempts == 0
        assert core.recovery.escalated_solves == 0

    def test_singular_jacobian_escalates_to_refresh(self):
        core = make_core()
        system = FaultySystem(mild_system(), singular_jacobian_calls={0})
        result = core.solve(system, np.zeros(3))
        assert_solves_mild(result)
        assert core.recovery.rungs() == ["chord", "refresh"]
        assert core.recovery.escalated_solves == 1
        attempts = list(core.recovery.attempts)
        assert not attempts[0].converged
        assert attempts[-1].converged

    def test_nan_residual_falls_back_to_full_newton(self):
        """A NaN evaluation fails fast and the default ladder recovers."""
        core = make_core(ladder="default")
        system = FaultySystem(mild_system(), nan_residual_calls={0})
        result = core.solve(system, np.zeros(3))
        assert_solves_mild(result)
        assert core.recovery.rungs() == ["chord", "full_newton"]
        assert core.stats.fallbacks == 1
        first = list(core.recovery.attempts)[0]
        assert first.iterations == 0  # failed before any iteration
        assert not first.converged

    def test_chord_divergence_escalates_to_refresh(self):
        """A wildly mis-scaled (but nonsingular) first factorisation makes
        the chord iteration crawl; the ladder refreshes the factors."""
        core = make_core()
        system = FaultySystem(mild_system(), scale_jacobian_calls={0: 50.0})
        result = core.solve(system, np.zeros(3))
        assert_solves_mild(result)
        assert core.recovery.rungs() == ["chord", "refresh"]
        attempts = list(core.recovery.attempts)
        assert not attempts[0].converged
        assert attempts[0].iterations > 0
        assert system.jacobian_calls >= 2

    def test_walks_entire_extended_chord_ladder(self):
        """Four consecutive singular Jacobians exhaust every strategy but
        pseudo-transient continuation, which must still find the root."""
        core = make_core()
        system = FaultySystem(
            mild_system(), singular_jacobian_calls={0, 1, 2, 3}
        )
        result = core.solve(system, np.zeros(3))
        assert_solves_mild(result)
        assert core.recovery.rungs() == list(EXTENDED_CHORD_LADDER)
        assert core.recovery.escalated_solves == 1
        last = list(core.recovery.attempts)[-1]
        assert last.converged
        assert "pseudo-transient" in last.detail
        assert core.stats.fallbacks == 1

    def test_extended_full_ladder_reaches_gmres(self):
        core = make_core(mode="full")
        system = FaultySystem(cos_system(), singular_jacobian_calls={0, 1})
        result = core.solve(system, np.zeros(3), fallback_z0=np.zeros(3))
        assert result.converged
        np.testing.assert_allclose(result.x, COS_ROOT, atol=1e-9)
        assert core.recovery.rungs() == ["newton", "full_newton", "gmres"]

    def test_rung_budgets_retry_before_escalating(self):
        core = make_core(rung_budgets={"chord": 2})
        system = FaultySystem(mild_system(), singular_jacobian_calls={0, 1})
        result = core.solve(system, np.zeros(3))
        assert_solves_mild(result)
        assert core.recovery.rungs() == ["chord", "chord", "refresh"]

    def test_full_mode_failure_carries_structured_context(self):
        """Satellite: ConvergenceError must carry iterations and
        residual_norm on the no-root failure path, plus the log."""
        core = make_core(mode="full", ladder="default")

        def residual(z):
            return z * z + 1.0  # no real root

        def jacobian(z):
            return np.diag(2.0 * z)

        with pytest.raises(ConvergenceError) as info:
            core.solve(FunctionSystem(residual, jacobian), np.array([0.5]))
        exc = info.value
        assert exc.iterations is not None and exc.iterations > 0
        assert exc.residual_norm is not None
        assert exc.recovery is core.recovery
        assert core.recovery.rungs()[0] == "newton"

    def test_faulty_linear_solver_raise_mode_triggers_fallback(self):
        solver = FaultyLinearSolver(fail_calls={0})
        core = make_core(mode="full", ladder="default", linear_solver=solver)
        result = core.solve(
            FaultySystem(cos_system()), np.zeros(3), fallback_z0=np.zeros(3)
        )
        assert result.converged
        np.testing.assert_allclose(result.x, COS_ROOT, atol=1e-9)
        assert core.recovery.rungs() == ["newton", "full_newton"]
        assert core.stats.fallbacks == 1
        assert solver.calls == 1

    def test_faulty_linear_solver_nan_mode_triggers_fallback(self):
        solver = FaultyLinearSolver(fail_calls={0}, mode="nan")
        core = make_core(mode="full", ladder="default", linear_solver=solver)
        result = core.solve(
            FaultySystem(cos_system()), np.zeros(3), fallback_z0=np.zeros(3)
        )
        assert result.converged
        assert core.recovery.rungs() == ["newton", "full_newton"]

    def test_faulty_linear_solver_validates_mode(self):
        with pytest.raises(ValueError, match="mode"):
            FaultyLinearSolver(mode="explode")

    def test_no_applicable_rung_raises_structured_error(self):
        """A ladder with only chord rungs on a full-mode core has nothing
        to run; the error still carries non-None context."""
        core = make_core(mode="full", ladder=("chord", "refresh"))
        with pytest.raises(ConvergenceError, match="no applicable") as info:
            core.solve(FaultySystem(cos_system()), np.zeros(3))
        assert info.value.iterations == 0
        assert math.isnan(info.value.residual_norm)
        assert info.value.recovery is core.recovery

    def test_recovery_log_summary_and_dict(self):
        core = make_core()
        system = FaultySystem(mild_system(), singular_jacobian_calls={0})
        core.solve(system, np.zeros(3))
        payload = core.recovery.as_dict()
        assert payload["escalated_solves"] == 1
        assert payload["total_attempts"] == 2
        assert payload["rung_counts"] == {"chord": 1, "refresh": 1}
        assert "escalated" in core.recovery.summary()


class TestContinuationWrappers:
    def base(self):
        def residual(z):
            return z * z - 2.0

        def jacobian(z):
            return np.diag(2.0 * z)

        return FunctionSystem(residual, jacobian, structure={"size": 2})

    def test_gmin_shift(self):
        base = self.base()
        wrapped = GminShiftedSystem(base, 0.5)
        z = np.array([1.0, 2.0])
        np.testing.assert_allclose(
            wrapped.residual(z), base.residual(z) + 0.5 * z
        )
        np.testing.assert_allclose(
            wrapped.jacobian(z), np.diag(2.0 * z) + 0.5 * np.eye(2)
        )
        assert wrapped.structure()["continuation"] == "GminShiftedSystem"

    def test_source_scaling(self):
        base = self.base()
        source = np.array([3.0, -1.0])
        wrapped = SourceScaledSystem(base, source, 0.25)
        z = np.array([1.0, 2.0])
        np.testing.assert_allclose(
            wrapped.residual(z), base.residual(z) + 0.75 * source
        )
        # Source scaling leaves the Jacobian untouched.
        np.testing.assert_allclose(wrapped.jacobian(z), np.diag(2.0 * z))

    def test_pseudo_transient_shift(self):
        base = self.base()
        z_ref = np.array([0.5, 0.5])
        wrapped = PseudoTransientSystem(base, z_ref, 0.1)
        z = np.array([1.0, 2.0])
        np.testing.assert_allclose(
            wrapped.residual(z), base.residual(z) + (z - z_ref) / 0.1
        )
        np.testing.assert_allclose(
            wrapped.jacobian(z), np.diag(2.0 * z) + 10.0 * np.eye(2)
        )

    def test_pseudo_transient_rejects_bad_dtau(self):
        with pytest.raises(ValueError, match="dtau"):
            PseudoTransientSystem(self.base(), np.zeros(2), 0.0)

    def test_pseudo_transient_march_converges(self):
        system = cos_system()
        options = NewtonOptions(
            atol=1e-12, max_iterations=50, raise_on_failure=False
        )

        def stage_solve(stage, start):
            return newton_solve(
                stage.residual, stage.jacobian, start, options=options
            )

        result, trail = pseudo_transient_march(
            stage_solve, system, np.zeros(3), stages=4, dtau=1e-2
        )
        assert result.converged
        np.testing.assert_allclose(result.x, COS_ROOT, atol=1e-9)
        assert len(trail) == 4
        dtaus = [dtau for dtau, _ in trail]
        np.testing.assert_allclose(dtaus, [1e-2, 1e-1, 1.0, 10.0])
        assert all(stage.converged for _, stage in trail)


class _SlowDae:
    """1-unknown DAE with f(x) = exp(x), b = 5: the root x = ln 5 exists
    but plain Newton needs far more iterations than the tiny budget the
    test grants, so the direct solve *and* every continuation stage fail
    cleanly (non-converged, never singular, no overflow)."""

    n = 1
    variable_names = ("x",)

    def f(self, x):
        return np.exp(np.asarray(x, dtype=float).ravel())

    def df_dx(self, x):
        return np.diag(np.exp(np.asarray(x, dtype=float).ravel()))

    def b(self, t):
        return np.full(1, 5.0)


class TestDcContinuation:
    def test_solves_with_generous_budget(self):
        x = dc_operating_point(_SlowDae())
        np.testing.assert_allclose(x, np.log(5.0), atol=1e-7)

    def test_total_failure_carries_recovery_log(self):
        options = DcOptions(
            newton=NewtonOptions(
                atol=1e-14, max_iterations=3, raise_on_failure=False
            ),
            gmin_steps=2,
            source_steps=1,
        )
        with pytest.raises(ConvergenceError) as info:
            dc_operating_point(_SlowDae(), options=options)
        exc = info.value
        assert exc.iterations is not None
        assert exc.residual_norm is not None
        assert exc.recovery is not None and exc.recovery.total_attempts > 0
        rungs = exc.recovery.rungs()
        assert rungs[0] == "newton"
        assert "continuation" in rungs
        assert any(not a.converged for a in exc.recovery.attempts)


class TestGuards:
    def test_nan_device_evaluation_is_attributed(self):
        dae = FaultyDAE(VanDerPolDae(mu=1.0), nan_f_calls={0})
        guarded = guard_dae(dae)
        with pytest.raises(NonFiniteError) as info:
            guarded.f(np.array([0.1, 0.2]))
        exc = info.value
        assert exc.method == "f"
        assert exc.variable == dae.variable_names[0]
        assert isinstance(exc, SimulationError)
        assert not isinstance(exc, ConvergenceError)
        # Only call 0 was poisoned; the guard passes clean values through.
        assert np.isfinite(guarded.f(np.array([0.1, 0.2]))).all()

    def test_nan_forcing_window_is_attributed(self):
        guarded = guard_dae(
            FaultyDAE(VanDerPolDae(mu=1.0), nan_b_window=(0.5, 1.0))
        )
        assert np.isfinite(guarded.b(0.25)).all()
        with pytest.raises(NonFiniteError) as info:
            guarded.b(0.75)
        assert info.value.method == "b"

    def test_guard_is_idempotent(self):
        guarded = guard_dae(VanDerPolDae(mu=1.0))
        assert guard_dae(guarded) is guarded

    def test_input_guard(self):
        guarded = guard_dae(VanDerPolDae(mu=1.0), check_inputs=True)
        with pytest.raises(NonFiniteError) as info:
            guarded.f(np.array([np.nan, 0.0]))
        assert info.value.method == "f"
        assert "state" in str(info.value)
        assert info.value.variable == guarded.variable_names[0]


class TestEngineFaultPaths:
    def test_transient_dt_underflow_carries_full_context(self):
        """A NaN forcing window ahead of the march makes every step into
        it fail; dt halves to the floor and the raised SimulationError
        must carry step/time/dt, a salvageable prefix and a resumable
        checkpoint of the pre-fault state."""
        dae = FaultyDAE(
            VanDerPolDae(mu=1.0), nan_b_window=(0.5, np.inf)
        )
        options = TransientOptions(
            integrator="trap", dt=0.01, dt_min=1e-10
        )
        with pytest.raises(SimulationError, match="underflow") as info:
            simulate_transient(dae, [2.0, 0.0], 0.0, 1.0, options)
        exc = info.value
        assert exc.step is not None and exc.step > 0
        assert exc.time is not None and exc.time < 0.5
        assert exc.dt is not None and exc.dt < 1e-9
        assert exc.checkpoint is not None
        assert exc.checkpoint.kind == "transient"
        assert exc.partial_result is not None
        assert exc.partial_result.t[-1] < 0.5
        assert np.isfinite(exc.partial_result.x).all()

    def test_ensemble_dt_underflow_carries_partial_result(self):
        members = [
            FaultyDAE(VanDerPolDae(mu=0.5), nan_b_window=(0.25, np.inf))
            for _ in range(2)
        ]
        ensemble = EnsembleDAE.from_members(members)
        x0 = np.tile([2.0, 0.0], (2, 1))
        options = TransientOptions(
            integrator="trap", dt=0.01, dt_min=1e-8
        )
        with pytest.raises(SimulationError, match="underflow") as info:
            simulate_transient_ensemble(ensemble, x0, 0.0, 1.0, options)
        exc = info.value
        assert exc.step is not None
        assert exc.dt is not None
        assert exc.partial_result is not None
        assert exc.partial_result.x.shape[1:] == (2, 2)
        assert exc.partial_result.t[-1] < 0.25

    def test_recovered_transient_reports_recovery_stats(self):
        """One poisoned f() evaluation mid-run fails a chord solve; the
        ladder's full-Newton rung re-evaluates cleanly and saves the
        step, and the run reports the escalation in its stats."""
        dae = FaultyDAE(VanDerPolDae(mu=1.0), nan_f_calls={40})
        options = TransientOptions(integrator="trap", dt=0.01)
        result = simulate_transient(dae, [2.0, 0.0], 0.0, 0.5, options)
        assert np.isfinite(result.x).all()
        recovery = result.stats.get("recovery")
        assert recovery is not None
        assert recovery["escalated_solves"] >= 1

    def test_clean_transient_has_no_recovery_stats(self):
        options = TransientOptions(integrator="trap", dt=0.01)
        result = simulate_transient(
            VanDerPolDae(mu=1.0), [2.0, 0.0], 0.0, 0.5, options
        )
        assert "recovery" not in result.stats
