"""Tests for the ensemble batch axis: stacked DAEs, the batched step
assembler/factorisation, the lock-step transient engine and the ensemble
sweep path."""

import numpy as np
import pytest
import scipy.sparse as sp
from dataclasses import replace

from repro.circuits.devices import Capacitor, Resistor, VoltageSource
from repro.circuits.library import MemsVcoDae, T_NOMINAL, VcoParams
from repro.circuits.netlist import Circuit
from repro.circuits.waveforms import Sine
from repro.dae import EnsembleDAE, VanDerPolDae, ensemble_from_factory
from repro.errors import SimulationError, ValidationError
from repro.linalg.lu_cache import BlockFactorization
from repro.linalg.transient_assembler import TransientStepAssembler
from repro.steadystate import (
    ensemble_frequency_sweep,
    oscillator_frequency_sweep,
)
from repro.transient import (
    TransientOptions,
    simulate_transient,
    simulate_transient_ensemble,
)


VCS = np.array([0.9, 1.3, 1.7, 2.1])


def vco_factory(vc):
    return MemsVcoDae(
        replace(VcoParams.vacuum(), control_offset=vc), constant_control=True
    )


def vco_stacked_factory(values):
    return MemsVcoDae(
        replace(VcoParams.vacuum(), control_offset=np.asarray(values)),
        constant_control=True,
    )


def vco_ensemble():
    return ensemble_from_factory(vco_factory, VCS, vco_stacked_factory)


class TestEnsembleDAE:
    def test_stacked_matches_members(self, rng):
        ensemble = vco_ensemble()
        loop = EnsembleDAE.from_members([vco_factory(v) for v in VCS])
        states = rng.standard_normal((VCS.size, 4))
        for name in ("q_rows", "f_rows", "dq_rows", "df_rows"):
            np.testing.assert_allclose(
                getattr(ensemble, name)(states),
                getattr(loop, name)(states),
                rtol=1e-14,
            )
        q1, f1 = ensemble.qf_rows(states)
        q2, f2 = loop.qf_rows(states)
        np.testing.assert_allclose(q1, q2, rtol=1e-14)
        np.testing.assert_allclose(f1, f2, rtol=1e-14)
        np.testing.assert_allclose(
            ensemble.b_rows(0.2), loop.b_rows(0.2), rtol=1e-14
        )
        grid = np.linspace(0.0, 1e-6, 7)
        np.testing.assert_allclose(
            ensemble.b_rows_grid(grid), loop.b_rows_grid(grid), rtol=1e-14
        )

    def test_structures_and_member_access(self):
        ensemble = vco_ensemble()
        member = ensemble.member(2)
        np.testing.assert_array_equal(
            ensemble.dq_structure(), member.dq_structure()
        )
        np.testing.assert_array_equal(
            ensemble.df_structure(), member.df_structure()
        )
        assert ensemble.batch_size == VCS.size
        assert ensemble.variable_names == member.variable_names

    def test_shape_validation(self):
        ensemble = vco_ensemble()
        with pytest.raises(ValidationError):
            ensemble.q_rows(np.zeros((2, 4)))
        with pytest.raises(ValidationError):
            EnsembleDAE.from_members([])
        with pytest.raises(ValidationError):
            EnsembleDAE.from_members([VanDerPolDae(), vco_factory(1.5)])

    def test_stacked_without_members_refuses_member_access(self):
        ensemble = EnsembleDAE.from_stacked(vco_stacked_factory(VCS), 4)
        assert not ensemble.has_members
        with pytest.raises(ValidationError):
            ensemble.member(0)

    def test_circuit_dae_per_scenario_device_stacks(self, rng):
        """A CircuitDAE whose devices hold (B,) component stacks matches
        per-member circuit builds — the PR-1 gather/scatter maps never
        look at parameter values."""
        resistances = np.array([500.0, 1000.0, 2000.0])
        capacitances = np.array([1e-7, 2e-7, 4e-7])

        def build(r, c):
            circuit = Circuit("per-scenario RC")
            circuit.add(
                VoltageSource("Vin", "in", "0", Sine(amplitude=1.0,
                                                     frequency=50.0))
            )
            circuit.add(Resistor("R1", "in", "out", r))
            circuit.add(Capacitor("C1", "out", "0", c))
            return circuit.to_dae()

        stacked = build(resistances, capacitances)
        members = [build(r, c) for r, c in zip(resistances, capacitances)]
        states = rng.standard_normal((3, stacked.n))
        for name in ("q_batch", "f_batch", "dq_dx_batch", "df_dx_batch"):
            got = getattr(stacked, name)(states)
            want = np.stack(
                [getattr(m, name)(s[None])[0]
                 for m, s in zip(members, states)]
            )
            np.testing.assert_allclose(got, want, rtol=1e-14)

    def test_qf_batch_matches_separate_calls(self, rng):
        dae = vco_stacked_factory(VCS)
        states = rng.standard_normal((VCS.size, 4))
        q, f = dae.qf_batch(states)
        np.testing.assert_allclose(q, dae.q_batch(states), rtol=0, atol=0)
        np.testing.assert_allclose(f, dae.f_batch(states), rtol=0, atol=0)


class TestBatchedAssembler:
    def test_block_diagonal_matches_per_block(self, rng):
        n, batch = 80, 3
        dq_mask = rng.random((n, n)) < 0.03
        df_mask = rng.random((n, n)) < 0.03
        np.fill_diagonal(dq_mask, True)
        asm = TransientStepAssembler(dq_mask, df_mask, batch=batch)
        assert not asm.dense
        dq = rng.standard_normal((batch, n, n)) * dq_mask
        df = rng.standard_normal((batch, n, n)) * df_mask
        out = asm.refresh(2.0, dq, 0.5, df)
        assert sp.issparse(out)
        reference = sp.block_diag(
            [2.0 * dq[b] + 0.5 * df[b] for b in range(batch)]
        ).toarray()
        np.testing.assert_allclose(out.toarray(), reference, rtol=0, atol=0)

    def test_dense_batch_returns_stack(self, rng):
        asm = TransientStepAssembler(
            np.ones((4, 4), bool), np.ones((4, 4), bool), batch=5
        )
        assert asm.dense
        dq = rng.standard_normal((5, 4, 4))
        df = rng.standard_normal((5, 4, 4))
        out = asm.refresh(3.0, dq, 1.0, df)
        assert out.shape == (5, 4, 4)
        np.testing.assert_array_equal(out, 3.0 * dq + 1.0 * df)

    def test_block_factorization_dense_and_sparse(self, rng):
        batch, n = 4, 6
        blocks = rng.standard_normal((batch, n, n)) + n * np.eye(n)
        rhs = rng.standard_normal((batch, n))
        factor = BlockFactorization().factor(blocks)
        solution = factor.solve(rhs)
        for b in range(batch):
            np.testing.assert_allclose(
                blocks[b] @ solution[b], rhs[b], atol=1e-10
            )
        sparse = sp.block_diag(list(blocks)).tocsc()
        solution2 = BlockFactorization().factor(sparse).solve(rhs)
        np.testing.assert_allclose(solution2, solution, atol=1e-10)

    def test_block_factorization_large_dense_uses_lu(self, rng):
        n = BlockFactorization.INVERSE_LIMIT + 4
        blocks = rng.standard_normal((2, n, n)) + n * np.eye(n)
        rhs = rng.standard_normal((2, n))
        factor = BlockFactorization().factor(blocks)
        solution = factor.solve(rhs)
        for b in range(2):
            np.testing.assert_allclose(
                solution[b], np.linalg.solve(blocks[b], rhs[b]), rtol=1e-10
            )

    def test_solve_before_factor_raises(self):
        with pytest.raises(RuntimeError, match="before factor"):
            BlockFactorization().solve(np.zeros((1, 2)))


class TestEnsembleTransient:
    """Acceptance: a batched B-scenario transient matches B independent
    serial runs within solver tolerance."""

    def test_matches_serial_runs(self):
        ensemble = vco_ensemble()
        x0 = np.tile([1.0, 0.0, 0.0, 0.0], (VCS.size, 1))
        opts = TransientOptions(integrator="trap", dt=T_NOMINAL / 100)
        horizon = 15 * T_NOMINAL
        batched = simulate_transient_ensemble(
            ensemble, x0, 0.0, horizon, opts
        )
        for index, vc in enumerate(VCS):
            serial = simulate_transient(
                vco_factory(vc), x0[index], 0.0, horizon, opts
            )
            assert np.array_equal(batched.t, serial.t)
            scale = np.maximum(np.abs(serial.x).max(axis=0), 1e-30)
            err = np.abs(batched.x[:, index] - serial.x).max(axis=0) / scale
            assert err.max() < 1e-5, (index, err)

    def test_stacked_matches_member_loop_path(self):
        x0 = np.tile([1.0, 0.0, 0.0, 0.0], (VCS.size, 1))
        opts = TransientOptions(integrator="trap", dt=T_NOMINAL / 100)
        fast = simulate_transient_ensemble(
            vco_ensemble(), x0, 0.0, 4 * T_NOMINAL, opts
        )
        slow = simulate_transient_ensemble(
            EnsembleDAE.from_members([vco_factory(v) for v in VCS]),
            x0, 0.0, 4 * T_NOMINAL, opts,
        )
        np.testing.assert_allclose(fast.x, slow.x, rtol=0, atol=1e-12)

    def test_integrator_variants_and_broadcast_x0(self):
        mus = np.array([0.3, 0.8, 1.4])
        ensemble = ensemble_from_factory(
            lambda mu: VanDerPolDae(mu=mu), mus,
            lambda stack: VanDerPolDae(mu=np.asarray(stack)),
        )
        for integrator in ("be", "trap", "bdf2"):
            opts = TransientOptions(integrator=integrator, dt=0.02)
            batched = simulate_transient_ensemble(
                ensemble, [2.0, 0.0], 0.0, 10.0, opts
            )
            for index, mu in enumerate(mus):
                serial = simulate_transient(
                    VanDerPolDae(mu=float(mu)), [2.0, 0.0], 0.0, 10.0, opts
                )
                scale = np.maximum(np.abs(serial.x).max(axis=0), 1e-30)
                err = np.abs(
                    batched.x[:, index] - serial.x
                ).max(axis=0) / scale
                assert err.max() < 2e-4, (integrator, index, err)

    def test_per_scenario_stats_reported(self):
        ensemble = vco_ensemble()
        x0 = np.tile([1.0, 0.0, 0.0, 0.0], (VCS.size, 1))
        result = simulate_transient_ensemble(
            ensemble, x0, 0.0, 5 * T_NOMINAL,
            TransientOptions(integrator="trap", dt=T_NOMINAL / 80),
        )
        per_scenario = result.stats["solver_per_scenario"]
        assert len(per_scenario) == VCS.size
        assert sum(s["iterations"] for s in per_scenario) \
            == result.stats["newton_iterations"]
        member = result.member(1)
        assert member.x.shape == (result.t.size, 4)
        assert member.stats["solver"] == per_scenario[1]

    def test_member_result_roundtrip(self):
        ensemble = vco_ensemble()
        x0 = np.tile([1.0, 0.0, 0.0, 0.0], (VCS.size, 1))
        result = simulate_transient_ensemble(
            ensemble, x0, 0.0, 2 * T_NOMINAL,
            TransientOptions(integrator="trap", dt=T_NOMINAL / 50),
        )
        member = result.member(3)
        np.testing.assert_array_equal(member.t, result.t)
        np.testing.assert_array_equal(member.x, result.x[:, 3])

    def test_rejects_adaptive_and_missing_dt(self):
        ensemble = vco_ensemble()
        x0 = np.zeros((VCS.size, 4))
        with pytest.raises(SimulationError, match="fixed-step"):
            simulate_transient_ensemble(
                ensemble, x0, 0.0, 1.0,
                TransientOptions(adaptive=True, dt=0.1),
            )
        with pytest.raises(SimulationError, match="options.dt"):
            simulate_transient_ensemble(ensemble, x0, 0.0, 1.0)
        with pytest.raises(SimulationError, match="linear solvers"):
            simulate_transient_ensemble(
                ensemble, x0, 0.0, 1.0,
                TransientOptions(dt=0.1, linear_solver=lambda a, b: b),
            )

    def test_plain_dae_wrapped_as_single_scenario(self):
        dae = VanDerPolDae(mu=0.5)
        opts = TransientOptions(integrator="trap", dt=0.02)
        batched = simulate_transient_ensemble(dae, [2.0, 0.0], 0.0, 5.0, opts)
        serial = simulate_transient(dae, [2.0, 0.0], 0.0, 5.0, opts)
        assert batched.batch_size == 1
        scale = np.maximum(np.abs(serial.x).max(axis=0), 1e-30)
        err = np.abs(batched.x[:, 0] - serial.x).max(axis=0) / scale
        assert err.max() < 1e-6


class TestEnsembleSweep:
    def test_matches_continuation(self):
        mus = np.linspace(0.2, 1.0, 5)
        continuation = oscillator_frequency_sweep(
            lambda mu: VanDerPolDae(mu=float(mu)), mus, period_guess=6.3
        )
        batched = ensemble_frequency_sweep(
            lambda mu: VanDerPolDae(mu=float(mu)), mus, period_guess=6.3,
            stacked_factory=lambda stack: VanDerPolDae(mu=np.asarray(stack)),
        )
        np.testing.assert_allclose(
            batched.frequencies, continuation.frequencies, rtol=1e-8
        )
        np.testing.assert_allclose(
            batched.amplitudes, continuation.amplitudes, rtol=1e-6
        )
        assert len(batched.solver_stats) == mus.size

    def test_method_dispatch_and_validation(self):
        mus = np.array([0.2, 0.6])
        via_dispatch = oscillator_frequency_sweep(
            lambda mu: VanDerPolDae(mu=float(mu)), mus, period_guess=6.3,
            method="ensemble",
        )
        direct = ensemble_frequency_sweep(
            lambda mu: VanDerPolDae(mu=float(mu)), mus, period_guess=6.3
        )
        np.testing.assert_allclose(
            via_dispatch.frequencies, direct.frequencies, rtol=1e-9
        )
        with pytest.raises(ValueError, match="method"):
            oscillator_frequency_sweep(
                lambda mu: VanDerPolDae(), [0.2], period_guess=6.3,
                method="bogus",
            )
