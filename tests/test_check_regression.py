"""Tests for the CI perf-regression gate (benchmarks/check_regression.py)."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import check_regression  # noqa: E402


def make_record(**overrides):
    methods = {
        "transient_reference": {"wall_time_s": 20.0,
                                "phase_error_cycles": 0.0},
        "wampde_envelope": {"wall_time_s": 0.3,
                            "phase_error_cycles": 0.0015},
    }
    for name, fields in overrides.items():
        methods.setdefault(name, {}).update(fields)
    return {
        "schema_version": 1,
        "bench": "speedup_table",
        "methods": [
            {"name": name, **fields} for name, fields in methods.items()
        ],
    }


@pytest.fixture
def records(tmp_path):
    def write(name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    return write


def run_gate(records, baseline, current, extra=()):
    baseline_path = records("baseline.json", baseline)
    current_path = records("current.json", current)
    return check_regression.main(
        ["--baseline", baseline_path, "--current", current_path, *extra]
    )


class TestRegressionGate:
    def test_identical_records_pass(self, records):
        assert run_gate(records, make_record(), make_record()) == 0

    def test_faster_run_passes(self, records):
        current = make_record(transient_reference={"wall_time_s": 5.0})
        assert run_gate(records, make_record(), current) == 0

    def test_injected_wall_time_regression_fails(self, records, capsys):
        # The acceptance scenario: a synthetic 1.5x slowdown must fail.
        current = make_record(transient_reference={"wall_time_s": 30.0})
        assert run_gate(records, make_record(), current) == 1
        out = capsys.readouterr().out
        assert "wall_time_s regressed" in out

    def test_slowdown_within_25_percent_passes(self, records):
        current = make_record(transient_reference={"wall_time_s": 24.0})
        assert run_gate(records, make_record(), current) == 0

    def test_phase_error_regression_fails(self, records, capsys):
        current = make_record(
            transient_reference={"phase_error_cycles": 0.05}
        )
        assert run_gate(records, make_record(), current) == 1
        assert "phase_error_cycles worsened" in capsys.readouterr().out

    def test_phase_error_within_tolerance_passes(self, records):
        current = make_record(
            wampde_envelope={"phase_error_cycles": 0.0016}
        )
        assert run_gate(records, make_record(), current) == 0

    def test_missing_method_fails(self, records):
        current = make_record()
        current["methods"] = [
            m for m in current["methods"] if m["name"] != "wampde_envelope"
        ]
        assert run_gate(records, make_record(), current) == 1

    def test_new_method_is_reported_but_passes(self, records, capsys):
        current = make_record(new_bench={"wall_time_s": 1.0,
                                         "phase_error_cycles": 0.0})
        assert run_gate(records, make_record(), current) == 0
        assert "new method" in capsys.readouterr().out

    def test_custom_slowdown_threshold(self, records):
        current = make_record(transient_reference={"wall_time_s": 24.0})
        assert run_gate(records, make_record(), current,
                        extra=["--max-slowdown", "1.1"]) == 1

    def test_malformed_record_errors(self, records, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        good = records("good.json", make_record())
        assert check_regression.main(
            ["--baseline", str(bad), "--current", good]
        ) == 2

    def test_repo_baseline_matches_current_record(self):
        # The committed baseline must gate the committed bench record —
        # guards against re-baselining one file and forgetting the other.
        root = Path(check_regression.REPO_ROOT)
        baseline = check_regression.load_methods(root / "BENCH_baseline.json")
        current = check_regression.load_methods(root / "BENCH_speedup.json")
        failures, _lines = check_regression.compare(
            baseline, current, max_slowdown=1.25, phase_atol=0.02,
            phase_rtol=0.10,
        )
        assert failures == []
