"""Tests for netlist handling and MNA assembly."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits import (
    Capacitor,
    Circuit,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuits.library import (
    MemsVcoDae,
    VcoParams,
    lc_oscillator_circuit,
    mems_vco_circuit,
    rc_diode_mixer_circuit,
)
from repro.circuits.waveforms import DC
from repro.errors import NetlistError
from repro.linalg import finite_difference_jacobian, jacobian_error


def voltage_divider():
    ckt = Circuit("divider")
    ckt.add(VoltageSource("V1", "in", "0", DC(10.0)))
    ckt.add(Resistor("R1", "in", "mid", 1e3))
    ckt.add(Resistor("R2", "mid", "0", 1e3))
    return ckt


class TestNetlist:
    def test_node_discovery_order(self):
        ckt = voltage_divider()
        assert ckt.node_names() == ("in", "mid")

    def test_duplicate_name_rejected(self):
        ckt = Circuit()
        ckt.add(Resistor("R1", "a", "0", 1.0))
        with pytest.raises(NetlistError, match="duplicate"):
            ckt.add(Resistor("R1", "b", "0", 1.0))

    def test_non_device_rejected(self):
        with pytest.raises(NetlistError):
            Circuit().add("not a device")

    def test_device_lookup(self):
        ckt = voltage_divider()
        assert ckt.device("R1").resistance == 1e3
        with pytest.raises(NetlistError):
            ckt.device("nope")

    def test_empty_circuit_invalid(self):
        with pytest.raises(NetlistError, match="no devices"):
            Circuit().validate()

    def test_floating_circuit_invalid(self):
        ckt = Circuit()
        ckt.add(Resistor("R1", "a", "b", 1.0))
        with pytest.raises(NetlistError, match="ground"):
            ckt.validate()

    def test_ground_aliases(self):
        for ground in ("0", "gnd", "GND", "ground"):
            ckt = Circuit()
            ckt.add(Resistor("R1", "a", ground, 1.0))
            assert ckt.has_ground()

    def test_len_and_repr(self):
        ckt = voltage_divider()
        assert len(ckt) == 3
        assert "divider" in repr(ckt)


class TestMnaAssembly:
    def test_unknown_ordering(self):
        dae = voltage_divider().to_dae()
        assert dae.variable_names == ("v(in)", "v(mid)", "V1.i")

    def test_divider_dc_solution(self):
        from repro.steadystate import dc_operating_point

        dae = voltage_divider().to_dae()
        x = dc_operating_point(dae)
        np.testing.assert_allclose(x[0], 10.0, atol=1e-9)
        np.testing.assert_allclose(x[1], 5.0, atol=1e-9)
        np.testing.assert_allclose(x[2], -5e-3, atol=1e-9)  # current a->b

    def test_kcl_row_sum_property(self, rng):
        """With ground rows dropped, summing f over all nodes of a
        resistor-only loop equals the negated ground-row contribution —
        verified by building a circuit with *no* ground-connected device
        being exercised: currents into internal nodes must cancel."""
        ckt = Circuit()
        ckt.add(Resistor("R1", "a", "b", 2.0))
        ckt.add(Resistor("R2", "b", "c", 3.0))
        ckt.add(Resistor("R3", "c", "a", 4.0))
        ckt.add(Resistor("Rg", "a", "0", 5.0))
        dae = ckt.to_dae()
        x = rng.normal(size=dae.n)
        f = dae.f(x)
        # Total current leaving all non-ground nodes = current into ground.
        ground_current = (x[dae.variable_names.index("v(a)")]) / 5.0
        assert np.isclose(f.sum(), ground_current)

    def test_b_vector_sources_only(self):
        ckt = Circuit()
        ckt.add(CurrentSource("I1", "0", "out", DC(2e-3)))
        ckt.add(Resistor("R1", "out", "0", 1e3))
        dae = ckt.to_dae()
        np.testing.assert_allclose(dae.b(0.0), [2e-3])
        np.testing.assert_allclose(dae.q(np.array([1.0])), [0.0])

    def test_current_source_dc_solution(self):
        from repro.steadystate import dc_operating_point

        ckt = Circuit()
        ckt.add(CurrentSource("I1", "0", "out", DC(2e-3)))
        ckt.add(Resistor("R1", "out", "0", 1e3))
        x = dc_operating_point(ckt.to_dae())
        np.testing.assert_allclose(x, [2.0], atol=1e-9)

    def test_dynamic_elements_in_q(self):
        ckt = Circuit()
        ckt.add(CurrentSource("I1", "0", "out", DC(0.0)))
        ckt.add(Capacitor("C1", "out", "0", 2e-6))
        ckt.add(Inductor("L1", "out", "0", 1e-3))
        dae = ckt.to_dae()
        x = np.array([3.0, 0.25])  # [v(out), L1.i]
        np.testing.assert_allclose(dae.q(x), [6e-6, 2.5e-4])

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_mna_jacobians_match_fd(self, seed):
        rng = np.random.default_rng(seed)
        dae = rc_diode_mixer_circuit().to_dae()
        x = rng.uniform(-0.5, 0.7, size=dae.n)
        assert jacobian_error(
            dae.df_dx(x), finite_difference_jacobian(dae.f, x)
        ) < 1e-5
        assert jacobian_error(
            dae.dq_dx(x), finite_difference_jacobian(dae.q, x)
        ) < 1e-5

    def test_batch_consistency(self, rng):
        dae = lc_oscillator_circuit().to_dae()
        states = rng.normal(size=(6, dae.n))
        np.testing.assert_allclose(
            dae.q_batch(states), np.stack([dae.q(s) for s in states])
        )
        np.testing.assert_allclose(
            dae.f_batch(states), np.stack([dae.f(s) for s in states])
        )


class TestVcoLibrary:
    def test_netlist_equals_handwritten(self, rng):
        """The MNA build and the vectorised DAE are the same system."""
        params = VcoParams.vacuum()
        netlist_dae = mems_vco_circuit(params).to_dae()
        fast_dae = MemsVcoDae(params)
        assert netlist_dae.variable_names == fast_dae.variable_names
        for _ in range(5):
            x = rng.normal(size=4) * np.array([1.0, 1e-3, 1e-7, 1e-2])
            t = float(rng.uniform(0, 40e-6))
            np.testing.assert_allclose(netlist_dae.q(x), fast_dae.q(x), rtol=1e-12)
            np.testing.assert_allclose(netlist_dae.f(x), fast_dae.f(x), rtol=1e-12)
            np.testing.assert_allclose(netlist_dae.b(t), fast_dae.b(t), rtol=1e-12)
            np.testing.assert_allclose(
                netlist_dae.dq_dx(x), fast_dae.dq_dx(x), rtol=1e-12
            )
            np.testing.assert_allclose(
                netlist_dae.df_dx(x), fast_dae.df_dx(x), rtol=1e-12
            )

    def test_static_tuning_anchor_nominal(self):
        """Paper: 1.5 V control -> about 0.75 MHz."""
        params = VcoParams.vacuum()
        assert params.static_frequency(1.5) == pytest.approx(
            0.75e6 / np.sqrt(0.9557), rel=1e-3
        )

    def test_static_tuning_monotone_in_control(self):
        params = VcoParams.vacuum()
        vc = np.linspace(0.0, 3.0, 20)
        freqs = params.static_frequency(vc)
        assert np.all(np.diff(freqs) >= 0)

    def test_air_variant_overdamped(self):
        air = VcoParams.air()
        critical = 2.0 * np.sqrt(air.stiffness * air.mass)
        assert air.damping > 10 * critical

    def test_air_forcing_period(self):
        assert VcoParams.air().control_period == pytest.approx(1e-3)

    def test_vacuum_forcing_is_30_cycles(self):
        from repro.circuits.library import T_NOMINAL

        assert VcoParams.vacuum().control_period == pytest.approx(
            30 * T_NOMINAL
        )

    def test_constant_control_freezes(self):
        params = VcoParams.vacuum()
        wave = params.control_waveform(constant=True)
        assert wave(0.0) == wave(17e-6) == params.control_offset

    def test_vco_batch_matches_pointwise(self, rng):
        dae = MemsVcoDae(VcoParams.vacuum())
        states = rng.normal(size=(5, 4)) * np.array([1.0, 1e-3, 1e-7, 1e-2])
        np.testing.assert_allclose(
            dae.q_batch(states), np.stack([dae.q(s) for s in states])
        )
        np.testing.assert_allclose(
            dae.df_dx_batch(states), np.stack([dae.df_dx(s) for s in states])
        )
        times = np.array([0.0, 1e-5])
        np.testing.assert_allclose(
            dae.b_batch(times), np.stack([dae.b(t) for t in times])
        )
