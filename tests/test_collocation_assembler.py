"""Pattern-reuse collocation assembly vs the sparse reference pipeline.

The assembler must agree with ``kron_diffmat`` / ``block_diagonal_expand``
reference assembly both structurally (same stored-entry set) and
numerically (bit-for-bit here, which implies the required <= 1e-12).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg import (
    BorderedSystem,
    CollocationJacobianAssembler,
    ReusableLUSolver,
    block_diagonal_expand,
    kron_diffmat,
    union_block_mask,
)
from repro.spectral.diffmat import fourier_differentiation_matrix


def random_blocks(rng, m, n, mask):
    """(m, n, n) random blocks supported on ``mask``."""
    blocks = rng.normal(size=(m, n, n))
    blocks[:, ~mask] = 0.0
    return blocks


def reference(coupling, dq, diag_inner=None, coupling_scale=1.0,
              outer_coeff=1.0, h=None):
    """The sparse pipeline the engines used before the assembler.

    ``h`` adds the ``block_diagonal_expand(dq) / h`` charge-difference term
    exactly as the envelope steppers wrote it (scipy's sparse division is a
    reciprocal multiply, which the assembler callers replicate).
    """
    n = dq.shape[1]
    d_big = kron_diffmat(coupling, n, ordering="point")
    core = coupling_scale * (d_big @ block_diagonal_expand(dq))
    if diag_inner is not None:
        core = core + block_diagonal_expand(diag_inner)
    core = outer_coeff * core
    if h is not None:
        core = block_diagonal_expand(dq) / h + core
    return core.tocsc()


class TestCoreAssembly:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_reference_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        m, n = 9, 3
        dq_mask = rng.random((n, n)) < 0.6
        df_mask = rng.random((n, n)) < 0.6
        dq = random_blocks(rng, m, n, dq_mask)
        df = random_blocks(rng, m, n, df_mask)
        coupling = fourier_differentiation_matrix(m, period=1.0)
        h = 3.7e-4
        w = 1.3e5
        beta = 0.55

        asm = CollocationJacobianAssembler(m, n, dq_mask=dq_mask, df_mask=df_mask)
        # dq/h + beta * (w * D_big @ dq + df), as the envelope builds it.
        got = asm.refresh(
            coupling, dq, diag_inner=df, coupling_scale=w,
            outer_coeff=beta, diag_outer=dq * (1.0 / h),
        )
        want = reference(
            coupling, dq, diag_inner=df, coupling_scale=w,
            outer_coeff=beta, h=h,
        )
        # Exact structural agreement ...
        assert got.nnz == want.nnz
        assert np.array_equal(got.indices, want.indices)
        assert np.array_equal(got.indptr, want.indptr)
        # ... and exact numerical agreement (trivially <= 1e-12).
        np.testing.assert_array_equal(got.data, want.data)

    def test_dense_masks_are_safe_default(self):
        rng = np.random.default_rng(3)
        m, n = 5, 2
        dq = rng.normal(size=(m, n, n))
        df = rng.normal(size=(m, n, n))
        coupling = fourier_differentiation_matrix(m, period=2.0)
        asm = CollocationJacobianAssembler(m, n)
        got = asm.refresh(coupling, dq, diag_inner=df)
        want = reference(coupling, dq, diag_inner=df)
        np.testing.assert_array_equal(got.toarray(), want.toarray())

    def test_refresh_tracks_value_changes(self):
        rng = np.random.default_rng(4)
        m, n = 7, 2
        coupling = fourier_differentiation_matrix(m, period=1.0)
        asm = CollocationJacobianAssembler(m, n)
        for _ in range(3):
            dq = rng.normal(size=(m, n, n))
            df = rng.normal(size=(m, n, n))
            got = asm.refresh(coupling, dq, diag_inner=df)
            want = reference(coupling, dq, diag_inner=df)
            np.testing.assert_array_equal(got.toarray(), want.toarray())

    def test_operand_zero_dropping_matches_scipy(self):
        """Entries vanish from the pattern exactly when scipy would drop
        them (operand exactly zero), and reappear when values return."""
        rng = np.random.default_rng(5)
        m, n = 5, 2
        coupling = fourier_differentiation_matrix(m, period=1.0)
        asm = CollocationJacobianAssembler(m, n)
        dq = rng.normal(size=(m, n, n))
        df = rng.normal(size=(m, n, n))
        dq[2, 0, 1] = 0.0
        df[3] = 0.0
        got = asm.refresh(coupling, dq, diag_inner=df)
        want = reference(coupling, dq, diag_inner=df)
        assert got.nnz == want.nnz
        np.testing.assert_array_equal(got.indices, want.indices)
        np.testing.assert_array_equal(got.data, want.data)
        # Restore the zeros: pattern grows back and values still match.
        dq2 = rng.normal(size=(m, n, n))
        df2 = rng.normal(size=(m, n, n))
        got2 = asm.refresh(coupling, dq2, diag_inner=df2)
        want2 = reference(coupling, dq2, diag_inner=df2)
        assert got2.nnz == want2.nnz
        np.testing.assert_array_equal(got2.data, want2.data)


class TestBorderedAssembly:
    def test_matches_bordered_system_bitwise(self):
        rng = np.random.default_rng(6)
        m, n = 9, 3
        dq = rng.normal(size=(m, n, n))
        df = rng.normal(size=(m, n, n))
        coupling = fourier_differentiation_matrix(m, period=1.0)
        nu = 7.3e5
        column = rng.normal(size=m * n)
        row = np.zeros(m * n)
        row[::n] = rng.normal(size=m)  # structurally sparse phase row

        asm = CollocationJacobianAssembler(m, n, num_border=1)
        got = asm.refresh(
            coupling, dq, diag_inner=df, coupling_scale=nu,
            border_columns=column[:, None], border_rows=row[None, :],
        )
        core = reference(coupling, dq, diag_inner=df, coupling_scale=nu)
        want = BorderedSystem(
            core.tocsr(), column[:, None], row[None, :], np.zeros((1, 1))
        ).assemble()
        assert got.nnz == want.nnz
        assert np.array_equal(got.indices, want.indices)
        assert np.array_equal(got.indptr, want.indptr)
        np.testing.assert_array_equal(got.data, want.data)

    def test_border_column_zero_drift(self):
        """The tail-splice fast path: only the border column's exact-zero
        set changes between refreshes."""
        rng = np.random.default_rng(8)
        m, n = 7, 2
        dq = rng.normal(size=(m, n, n))
        df = rng.normal(size=(m, n, n))
        coupling = fourier_differentiation_matrix(m, period=1.0)
        row = rng.normal(size=m * n)
        asm = CollocationJacobianAssembler(m, n, num_border=1)
        for zeros in ([], [3], [3, 9], [0], []):
            column = rng.normal(size=m * n)
            column[list(zeros)] = 0.0
            got = asm.refresh(
                coupling, dq, diag_inner=df,
                border_columns=column[:, None], border_rows=row[None, :],
            )
            core = reference(coupling, dq, diag_inner=df)
            want = BorderedSystem(
                core.tocsr(), column[:, None], row[None, :], np.zeros((1, 1))
            ).assemble()
            assert got.nnz == want.nnz
            assert np.array_equal(got.indices, want.indices)
            assert np.array_equal(got.indptr, want.indptr)
            np.testing.assert_array_equal(got.data, want.data)

    def test_missing_border_values_raise(self):
        asm = CollocationJacobianAssembler(3, 2, num_border=1)
        coupling = fourier_differentiation_matrix(3, period=1.0)
        dq = np.ones((3, 2, 2))
        with pytest.raises(ValueError):
            asm.refresh(coupling, dq)
        asm2 = CollocationJacobianAssembler(3, 2)
        with pytest.raises(ValueError):
            asm2.refresh(coupling, dq, border_columns=np.ones((6, 1)),
                         border_rows=np.ones((1, 6)))


def test_union_block_mask():
    from repro.circuits.library import MemsVcoDae

    dae = MemsVcoDae()
    mask = union_block_mask(dae)
    assert mask.shape == (4, 4)
    assert np.array_equal(mask, dae.dq_structure() | dae.df_structure())


class TestReusableLUSolver:
    def test_sparse_solutions_match_spsolve(self):
        import scipy.sparse.linalg as spla

        rng = np.random.default_rng(0)
        a = sp.random(40, 40, density=0.2, random_state=1).tocsc()
        a = a + sp.identity(40) * 8.0
        rhs = rng.normal(size=40)
        solver = ReusableLUSolver()
        np.testing.assert_array_equal(
            solver(a, rhs), spla.spsolve(a.tocsc(), rhs)
        )

    def test_value_changes_are_picked_up(self):
        rng = np.random.default_rng(1)
        a = (sp.random(25, 25, density=0.3, random_state=2)
             + sp.identity(25) * 5.0).tocsc()
        solver = ReusableLUSolver()
        rhs = rng.normal(size=25)
        x1 = solver(a, rhs)
        np.testing.assert_allclose(a @ x1, rhs, atol=1e-10)
        a.data = a.data * 1.7  # same pattern, new values
        x2 = solver(a, rhs)
        np.testing.assert_allclose(a @ x2, rhs, atol=1e-10)
        assert not np.allclose(x1, x2)

    def test_identical_values_reuse_factorisation(self):
        import scipy.sparse.linalg as spla

        calls = {"n": 0}
        orig = spla.splu

        def counting(matrix, *args, **kwargs):
            calls["n"] += 1
            return orig(matrix, *args, **kwargs)

        rng = np.random.default_rng(2)
        a = (sp.random(25, 25, density=0.3, random_state=3)
             + sp.identity(25) * 5.0).tocsc()
        solver = ReusableLUSolver()
        import repro.linalg.lu_cache as lu_cache

        old = lu_cache.spla.splu
        lu_cache.spla.splu = counting
        try:
            solver(a, rng.normal(size=25))
            solver(a, rng.normal(size=25))
            solver(a, rng.normal(size=25))
        finally:
            lu_cache.spla.splu = old
        assert calls["n"] == 1

    def test_csr_input_uses_cached_conversion(self):
        rng = np.random.default_rng(3)
        a = (sp.random(30, 30, density=0.25, random_state=4)
             + sp.identity(30) * 6.0).tocsr()
        solver = ReusableLUSolver()
        rhs = rng.normal(size=30)
        x1 = solver(a, rhs)
        np.testing.assert_allclose(a @ x1, rhs, atol=1e-10)
        a.data[:] = a.data * 0.9  # in-place value change, same index arrays
        x2 = solver(a, rhs)
        np.testing.assert_allclose(a @ x2, rhs, atol=1e-10)

    def test_dense_small_passthrough_and_large_cache(self):
        rng = np.random.default_rng(4)
        small = rng.normal(size=(4, 4)) + np.eye(4) * 4.0
        rhs = rng.normal(size=4)
        solver = ReusableLUSolver()
        np.testing.assert_array_equal(
            solver(small, rhs), np.linalg.solve(small, rhs)
        )
        big_n = ReusableLUSolver.DENSE_CACHE_THRESHOLD + 8
        big = rng.normal(size=(big_n, big_n)) + np.eye(big_n) * big_n
        rhs = rng.normal(size=big_n)
        x = solver(big, rhs)
        np.testing.assert_allclose(big @ x, rhs, atol=1e-9)
        x2 = solver(big, rhs * 2.0)  # cache hit, different rhs
        np.testing.assert_allclose(big @ x2, rhs * 2.0, atol=1e-9)
