"""Tests for single-sweep (forward-sensitivity) monodromy propagation.

The sensitivity-propagated monodromy must match the independent
finite-difference monodromy, shooting must converge with exactly one
transient sweep per Newton iteration, and the period column of the
autonomous bordered system must match a finite difference on the flow.
"""

import numpy as np
import pytest

from repro.circuits.library import MemsVcoDae, T_NOMINAL, VcoParams
from repro.dae import LinearRCDae, VanDerPolDae
from repro.errors import SimulationError
from repro.steadystate import (
    estimate_period_from_transient,
    monodromy_finite_difference,
    shooting_autonomous,
    shooting_periodic,
)
from repro.steadystate.shooting import _flow, _sensitivity_sweep
from repro.transient import (
    TransientOptions,
    simulate_transient,
    simulate_transient_with_sensitivity,
)


class TestSensitivityPropagation:
    @pytest.mark.parametrize("integrator", ["be", "trap", "bdf2"])
    def test_matches_fd_monodromy_vdp(self, vdp, integrator):
        x0 = np.array([2.0, 0.1])
        period = 6.28
        _phi, mono_fd = monodromy_finite_difference(
            vdp, x0, 0.0, period, steps_per_period=200, integrator=integrator
        )
        _phi, mono_s, _ = _sensitivity_sweep(
            vdp, x0, 0.0, period, 200, integrator
        )
        np.testing.assert_allclose(
            mono_s, mono_fd, rtol=0, atol=2e-5 * np.abs(mono_fd).max()
        )

    def test_matches_scaled_fd_on_mems_vco(self):
        # The VCO's states span nine decades; probe each column with a
        # step scaled to its own magnitude (the default absolute FD probe
        # is meaningless for the nm-scale displacement state).
        dae = MemsVcoDae(VcoParams.air())
        x0 = np.array([1.0, 0.0, 0.0, 0.0])
        steps = 300
        _phi, mono_s, _ = _sensitivity_sweep(
            dae, x0, 0.0, T_NOMINAL, steps, "trap"
        )
        scales = np.array([1.0, 1e-4, 1e-9, 1e-3])
        mono_fd = np.empty((4, 4))
        for j in range(4):
            h = 1e-5 * scales[j]
            xp = x0.copy()
            xp[j] += h
            xm = x0.copy()
            xm[j] -= h
            mono_fd[:, j] = (
                _flow(dae, xp, 0.0, T_NOMINAL, steps, "trap")
                - _flow(dae, xm, 0.0, T_NOMINAL, steps, "trap")
            ) / (2.0 * h)
        np.testing.assert_allclose(
            mono_s, mono_fd, rtol=0, atol=1e-5 * np.abs(mono_fd).max()
        )

    def test_period_column_matches_fd(self, vdp):
        x0 = np.array([2.0, 0.1])
        period = 6.28
        steps = 200
        _phi, _mono, d_dt = _sensitivity_sweep(
            vdp, x0, 0.0, period, steps, "trap", period_derivative=True
        )
        # Central difference with a step large enough to sit above the
        # Newton-tolerance noise floor of the two probe sweeps.
        h = 1e-5 * period
        d_fd = (
            _flow(vdp, x0, 0.0, period + h, steps, "trap")
            - _flow(vdp, x0, 0.0, period - h, steps, "trap")
        ) / (2.0 * h)
        np.testing.assert_allclose(
            d_dt, d_fd, rtol=0, atol=1e-4 * np.abs(d_fd).max()
        )

    def test_forced_period_column_includes_b_derivative(self):
        # Forced system: d Phi / d T picks up the forcing time-derivative
        # terms; check against a central difference on the sweep length.
        dae = LinearRCDae(resistance=1.0, capacitance=0.5, amplitude=1.0,
                          omega=2.0 * np.pi)
        x0 = np.array([0.3])
        period = 1.0
        steps = 400

        def flow(T):
            opts = TransientOptions(integrator="trap", dt=T / steps,
                                    store_every=10**9)
            return simulate_transient(dae, x0, 0.0, T, opts).final_state()

        _phi, _mono, d_dt = _sensitivity_sweep(
            dae, x0, 0.0, period, steps, "trap", period_derivative=True
        )
        h = 1e-6 * period
        d_fd = (flow(period + h) - flow(period - h)) / (2.0 * h)
        np.testing.assert_allclose(
            d_dt, d_fd, rtol=0, atol=2e-5 * np.abs(d_fd).max()
        )

    def test_chained_sweeps_compose(self, vdp):
        # S over [0, T] must equal S over [T/2, T] @ S over [0, T/2]
        # (sensitivities compose like the flow's Jacobian).
        x0 = np.array([2.0, 0.1])
        period = 6.0
        opts = TransientOptions(integrator="trap", dt=period / 400,
                                store_every=10**9)
        half = TransientOptions(integrator="trap", dt=period / 400,
                                store_every=10**9)
        whole = simulate_transient_with_sensitivity(vdp, x0, 0.0, period, opts)
        first = simulate_transient_with_sensitivity(
            vdp, x0, 0.0, period / 2, half
        )
        second = simulate_transient_with_sensitivity(
            vdp, first.result.final_state(), period / 2, period, half,
            s0=first.sensitivity,
        )
        np.testing.assert_allclose(
            second.sensitivity, whole.sensitivity,
            atol=1e-6 * np.abs(whole.sensitivity).max(),
        )

    def test_requires_fixed_step(self, vdp):
        with pytest.raises(SimulationError, match="fixed-step"):
            simulate_transient_with_sensitivity(
                vdp, [2.0, 0.0], 0.0, 1.0,
                TransientOptions(adaptive=True, dt=0.01),
            )


class TestShootingSweepEconomy:
    def test_forced_rc_one_sweep_per_iteration(self):
        dae = LinearRCDae(resistance=1.0, capacitance=1.0, amplitude=1.0,
                          omega=2 * np.pi)
        result = shooting_periodic(dae, [0.0], period=1.0,
                                   steps_per_period=200)
        np.testing.assert_allclose(
            result.x0[0], dae.steady_state_response(0.0), atol=1e-4
        )
        assert result.transient_sweeps == result.newton_iterations + 1

    def test_autonomous_vdp_one_sweep_per_iteration(self, vdp):
        settle = simulate_transient(
            vdp, [2.0, 0.0], 0.0, 60.0,
            TransientOptions(integrator="trap", dt=0.02),
        )
        guess = estimate_period_from_transient(settle, key=0)
        result = shooting_autonomous(
            vdp, settle.final_state(), guess,
            anchor_index=1, anchor_value=0.0,
        )
        expected = 2 * np.pi / vdp.small_mu_angular_frequency()
        assert abs(result.period - expected) / expected < 2e-3
        assert result.transient_sweeps == result.newton_iterations + 1

    def test_bench_circuit_one_sweep_per_iteration(self):
        # The paper's MEMS VCO (unforced): the acceptance-criterion
        # configuration — shooting must converge with exactly one transient
        # sweep per Newton iteration.
        dae = MemsVcoDae(VcoParams.vacuum(), constant_control=True)
        settle = simulate_transient(
            dae, [1.0, 0.0, 0.0, 0.0], 0.0, 30 * T_NOMINAL,
            TransientOptions(integrator="trap", dt=T_NOMINAL / 150),
        )
        guess = estimate_period_from_transient(settle, key=0)
        result = shooting_autonomous(
            dae, settle.final_state(), guess, anchor_index=1,
            steps_per_period=300,
        )
        assert abs(result.period - T_NOMINAL) / T_NOMINAL < 0.01
        assert result.transient_sweeps == result.newton_iterations + 1
        # Autonomous orbit: one Floquet multiplier pinned at 1.
        multipliers = np.abs(result.floquet_multipliers())
        assert np.isclose(multipliers.max(), 1.0, atol=0.02)

    def test_fd_mode_agrees_with_sensitivity_mode(self, vdp):
        settle = simulate_transient(
            vdp, [2.0, 0.0], 0.0, 60.0,
            TransientOptions(integrator="trap", dt=0.02),
        )
        guess = estimate_period_from_transient(settle, key=0)
        kwargs = dict(anchor_index=1, anchor_value=0.0)
        fast = shooting_autonomous(vdp, settle.final_state(), guess, **kwargs)
        legacy = shooting_autonomous(vdp, settle.final_state(), guess,
                                     monodromy="fd", **kwargs)
        assert abs(fast.period - legacy.period) / legacy.period < 1e-6
        np.testing.assert_allclose(fast.x0, legacy.x0, atol=1e-6)
        # The legacy scheme spends n + 2 sweeps per evaluation.
        assert legacy.transient_sweeps > fast.transient_sweeps

    def test_rejects_unknown_monodromy_method(self, vdp):
        with pytest.raises(ValueError, match="monodromy"):
            shooting_periodic(vdp, [2.0, 0.0], period=6.28,
                              monodromy="adjoint")
