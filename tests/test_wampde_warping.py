"""Tests for WarpingFunction and the sawtooth path."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.wampde import WarpingFunction, sawtooth_path


class TestWarpingFunction:
    def test_constant_frequency_is_linear(self):
        warp = WarpingFunction([0.0, 1.0, 2.0], [3.0, 3.0, 3.0])
        t = np.linspace(0, 2, 11)
        np.testing.assert_allclose(warp.phi(t), 3.0 * t, atol=1e-12)

    def test_linear_frequency_is_quadratic(self):
        # omega(t) = t  ->  phi(t) = t^2/2.
        warp = WarpingFunction([0.0, 2.0], [0.0, 2.0])
        t = np.linspace(0, 2, 21)
        np.testing.assert_allclose(warp.phi(t), 0.5 * t**2, atol=1e-12)

    def test_derivative_consistency(self):
        """phi' == omega (piecewise): finite differences confirm."""
        rng = np.random.default_rng(5)
        times = np.sort(rng.uniform(0, 10, 17))
        times[0], times[-1] = 0.0, 10.0
        omega = rng.uniform(0.5, 2.0, 17)
        warp = WarpingFunction(times, omega)
        t = np.linspace(0.01, 9.99, 300)
        step = 1e-7
        numeric = (warp.phi(t + step) - warp.phi(t - step)) / (2 * step)
        np.testing.assert_allclose(numeric, warp.omega(t), rtol=1e-4)

    def test_total_cycles(self):
        warp = WarpingFunction([0.0, 2.0], [1.0, 1.0])
        assert np.isclose(warp.total_cycles(), 2.0)

    def test_extension_beyond_knots(self):
        warp = WarpingFunction([0.0, 1.0], [2.0, 2.0])
        assert np.isclose(warp.phi(2.0), 4.0)  # linear continuation
        assert np.isclose(warp.phi(-1.0), -2.0)

    def test_phi0_offset(self):
        warp = WarpingFunction([0.0, 1.0], [1.0, 1.0], phi0=5.0)
        assert np.isclose(warp.phi(0.0), 5.0)

    def test_invert_roundtrip(self):
        rng = np.random.default_rng(7)
        times = np.linspace(0, 5, 11)
        omega = rng.uniform(0.5, 3.0, 11)
        warp = WarpingFunction(times, omega)
        t = np.linspace(0.0, 5.0, 40)
        np.testing.assert_allclose(warp.invert(warp.phi(t)), t, atol=1e-9)

    def test_invert_requires_positive_omega(self):
        warp = WarpingFunction([0.0, 1.0], [1.0, -1.0])
        with pytest.raises(ValidationError):
            warp.invert(0.5)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            WarpingFunction([0.0, 1.0], [1.0])

    def test_rejects_nonincreasing_times(self):
        with pytest.raises(ValidationError):
            WarpingFunction([0.0, 0.0], [1.0, 1.0])

    def test_rejects_single_knot(self):
        with pytest.raises(ValidationError):
            WarpingFunction([0.0], [1.0])

    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.1, max_value=10.0),
    )
    def test_phi_monotone_for_positive_omega(self, w0, w1):
        warp = WarpingFunction([0.0, 1.0], [w0, w1])
        t = np.linspace(0, 1, 50)
        assert np.all(np.diff(warp.phi(t)) > 0)


class TestSawtoothPath:
    def test_paper_fig3_shape(self):
        """The diagonal path t_i = t mod T_i (paper Fig 3).

        Times are chosen away from exact period multiples, where binary
        floating point makes ``mod`` legitimately ambiguous.
        """
        t = np.array([0.0, 0.01, 0.025, 0.03, 1.01, 1.952])
        path = sawtooth_path(t, (0.02, 1.0))
        np.testing.assert_allclose(
            path[:, 0], [0.0, 0.01, 0.005, 0.01, 0.01, 0.012], atol=1e-12
        )
        np.testing.assert_allclose(
            path[:, 1], [0.0, 0.01, 0.025, 0.03, 0.01, 0.952], atol=1e-12
        )

    def test_paper_worked_example(self):
        """Paper: y(1.952) = yhat(0.012, 0.952) for T1=0.02, T2=1."""
        path = sawtooth_path([1.952], (0.02, 1.0))
        np.testing.assert_allclose(path[0], [0.012, 0.952], atol=1e-12)

    def test_multiple_periods(self):
        path = sawtooth_path(np.linspace(0, 1, 5), (0.25, 0.5, 1.0))
        assert path.shape == (5, 3)
        assert np.all(path[:, 0] < 0.25)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValidationError):
            sawtooth_path([0.0], (0.0,))
