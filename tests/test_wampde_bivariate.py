"""Tests for BivariateWaveform."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.spectral import collocation_grid
from repro.wampde import BivariateWaveform


def make_waveform(num_t2=6, num_t1=9):
    """xhat(t1, t2) = (1 + t2) * cos(2 pi t1): separable, easy closed form."""
    t2 = np.linspace(0.0, 1.0, num_t2)
    t1 = collocation_grid(num_t1, 1.0)
    samples = (1.0 + t2)[:, None] * np.cos(2 * np.pi * t1)[None, :]
    return BivariateWaveform(t2, samples, name="v"), t1, t2


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            BivariateWaveform([0.0, 1.0], np.zeros((3, 5)))

    def test_odd_t1_required(self):
        with pytest.raises(ValidationError):
            BivariateWaveform([0.0, 1.0], np.zeros((2, 4)))

    def test_increasing_t2_required(self):
        with pytest.raises(ValidationError):
            BivariateWaveform([1.0, 0.0], np.zeros((2, 5)))

    def test_repr_mentions_name(self):
        waveform, _, _ = make_waveform()
        assert "v" in repr(waveform)


class TestEvaluation:
    def test_matches_samples_at_grid(self):
        waveform, t1, t2 = make_waveform()
        values = waveform.grid_values(t1, t2)
        np.testing.assert_allclose(values, waveform.samples, atol=1e-10)

    def test_t1_periodicity(self):
        waveform, _, _ = make_waveform()
        t1 = np.array([0.1, 0.4])
        np.testing.assert_allclose(
            waveform(t1, 0.5), waveform(t1 + 1.0, 0.5), atol=1e-10
        )

    def test_exact_for_bandlimited_function(self):
        waveform, _, _ = make_waveform()
        t1 = np.linspace(0, 1, 23)
        t2 = 0.35
        expected = (1.0 + t2) * np.cos(2 * np.pi * t1)
        np.testing.assert_allclose(waveform(t1, t2), expected, atol=1e-10)

    def test_linear_interpolation_along_t2(self):
        waveform, _, t2 = make_waveform()
        mid = 0.5 * (t2[0] + t2[1])
        value = waveform(0.0, mid)
        expected = (1.0 + mid) * 1.0
        np.testing.assert_allclose(value, expected, atol=1e-10)

    def test_t2_clamped_outside_range(self):
        waveform, _, _ = make_waveform()
        np.testing.assert_allclose(
            waveform(0.0, -5.0), waveform(0.0, 0.0), atol=1e-12
        )
        np.testing.assert_allclose(
            waveform(0.0, 99.0), waveform(0.0, 1.0), atol=1e-12
        )

    def test_broadcasting(self):
        waveform, _, _ = make_waveform()
        t1 = np.linspace(0, 1, 7)[None, :]
        t2 = np.linspace(0, 1, 5)[:, None]
        values = waveform(t1, t2)
        assert values.shape == (5, 7)

    def test_scalar_evaluation(self):
        waveform, _, _ = make_waveform()
        assert isinstance(waveform(0.25, 0.5), float)


class TestSummaries:
    def test_amplitude_vs_t2(self):
        waveform, _, t2 = make_waveform()
        amplitude = waveform.amplitude_vs_t2()
        np.testing.assert_allclose(amplitude, 2.0 * (1.0 + t2), rtol=1e-10)

    def test_fundamental_magnitude(self):
        waveform, _, t2 = make_waveform()
        magnitude = waveform.fundamental_magnitude_vs_t2()
        np.testing.assert_allclose(magnitude, 1.0 + t2, rtol=1e-10)

    def test_t1_grid(self):
        waveform, t1, _ = make_waveform()
        np.testing.assert_allclose(waveform.t1_grid(), t1)

    def test_non_unit_t1_period(self):
        t2 = np.array([0.0, 1.0])
        t1 = collocation_grid(5, 0.02)
        samples = np.tile(np.sin(2 * np.pi * t1 / 0.02), (2, 1))
        waveform = BivariateWaveform(t2, samples, t1_period=0.02)
        np.testing.assert_allclose(
            waveform(0.005, 0.0), 1.0, atol=1e-10
        )
