"""Tests for device stamps: values and analytic-vs-numeric Jacobians."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.devices import (
    VCCS,
    VCVS,
    Capacitor,
    CubicConductance,
    CurrentSource,
    Diode,
    Inductor,
    MemsVaractor,
    Resistor,
    TanhNegativeConductance,
    VoltageSource,
)
from repro.circuits.waveforms import DC, Sine
from repro.errors import DeviceError
from repro.linalg import finite_difference_jacobian, jacobian_error

voltages = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)


def check_device_jacobians(device, u):
    """Assert analytic local Jacobians match finite differences at ``u``."""
    u = np.asarray(u, dtype=float)
    assert jacobian_error(
        device.df_local(u), finite_difference_jacobian(device.f_local, u)
    ) < 1e-6
    assert jacobian_error(
        device.dq_local(u), finite_difference_jacobian(device.q_local, u)
    ) < 1e-6


class TestResistor:
    def test_ohms_law_stamp(self):
        res = Resistor("R1", "a", "b", 100.0)
        f = res.f_local(np.array([2.0, 1.0]))
        np.testing.assert_allclose(f, [0.01, -0.01])

    def test_current_conservation(self):
        res = Resistor("R1", "a", "b", 50.0)
        f = res.f_local(np.array([1.3, -0.2]))
        assert np.isclose(f.sum(), 0.0)

    def test_jacobians(self):
        check_device_jacobians(Resistor("R1", "a", "b", 10.0), [0.5, -0.5])

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(DeviceError):
            Resistor("R1", "a", "b", 0.0)


class TestCapacitor:
    def test_charge_stamp(self):
        cap = Capacitor("C1", "a", "b", 1e-6)
        q = cap.q_local(np.array([3.0, 1.0]))
        np.testing.assert_allclose(q, [2e-6, -2e-6])

    def test_no_static_current(self):
        cap = Capacitor("C1", "a", "b", 1e-6)
        np.testing.assert_allclose(cap.f_local(np.array([1.0, 0.0])), 0.0)

    def test_jacobians(self):
        check_device_jacobians(Capacitor("C1", "a", "b", 2e-6), [1.0, -1.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(DeviceError):
            Capacitor("C1", "a", "b", -1e-12)


class TestInductor:
    def test_internal_unknown(self):
        ind = Inductor("L1", "a", "b", 1e-3)
        assert ind.internal_names == ("i",)
        assert ind.n_local == 3

    def test_flux_and_kvl(self):
        ind = Inductor("L1", "a", "b", 1e-3)
        u = np.array([2.0, 0.5, 0.1])
        np.testing.assert_allclose(ind.q_local(u), [0.0, 0.0, 1e-4])
        np.testing.assert_allclose(ind.f_local(u), [0.1, -0.1, -1.5])

    def test_jacobians(self):
        check_device_jacobians(Inductor("L1", "a", "b", 1e-3), [1.0, 0.0, 0.2])


class TestSources:
    def test_current_source_rhs_sign(self):
        src = CurrentSource("I1", "a", "b", DC(1e-3))
        b = src.b_local(0.0)
        np.testing.assert_allclose(b, [-1e-3, 1e-3])

    def test_current_source_waveform(self):
        src = CurrentSource("I1", "a", "b", Sine(amplitude=2.0, frequency=1.0))
        assert np.isclose(src.b_local(0.25)[1], 2.0)

    def test_voltage_source_kvl(self):
        src = VoltageSource("V1", "a", "b", DC(5.0))
        u = np.array([5.0, 0.0, 0.3])
        f = src.f_local(u)
        np.testing.assert_allclose(f, [0.3, -0.3, 5.0])
        np.testing.assert_allclose(src.b_local(0.0), [0.0, 0.0, 5.0])

    def test_voltage_source_jacobians(self):
        check_device_jacobians(
            VoltageSource("V1", "a", "b", DC(1.0)), [0.5, 0.1, -0.2]
        )


class TestNonlinearResistors:
    def test_cubic_negative_region(self):
        dev = CubicConductance("G1", "a", "b", g1=1.0, g3=1.0 / 3.0)
        assert dev.conductance(0.0) < 0  # negative at origin
        assert dev.conductance(2.0) > 0  # positive beyond

    def test_cubic_amplitude_estimate(self):
        dev = CubicConductance("G1", "a", "b", g1=1.0, g3=1.0 / 3.0)
        assert np.isclose(dev.limit_cycle_amplitude_estimate(), 2.0)

    @given(voltages)
    def test_cubic_jacobians(self, v):
        dev = CubicConductance("G1", "a", "b", g1=0.5, g3=0.2)
        check_device_jacobians(dev, [v, 0.0])

    def test_cubic_rejects_bad_coefficients(self):
        with pytest.raises(DeviceError):
            CubicConductance("G1", "a", "b", g1=-1.0, g3=1.0)

    def test_tanh_negative_then_positive(self):
        dev = TanhNegativeConductance("G2", "a", "b", gneg=2.0, gsat=0.5,
                                      imax=1.0)
        assert dev.conductance(0.0) == pytest.approx(-1.5)
        assert dev.conductance(10.0) == pytest.approx(0.5, abs=1e-6)

    @given(voltages)
    def test_tanh_jacobians(self, v):
        dev = TanhNegativeConductance("G2", "a", "b", gneg=2.0, gsat=0.5,
                                      imax=1.0)
        check_device_jacobians(dev, [v, -0.1])

    def test_tanh_rejects_no_negative_region(self):
        with pytest.raises(DeviceError):
            TanhNegativeConductance("G2", "a", "b", gneg=0.5, gsat=1.0,
                                    imax=1.0)


class TestDiode:
    def test_forward_current_positive(self):
        dev = Diode("D1", "a", "b")
        assert dev.current(0.7) > 1e-4

    def test_reverse_saturation(self):
        dev = Diode("D1", "a", "b", saturation_current=1e-14)
        assert np.isclose(dev.current(-1.0), -1e-14, rtol=1e-6)

    def test_limiting_is_continuous(self):
        dev = Diode("D1", "a", "b")
        v_limit = 40.0 * dev.thermal_voltage
        below = dev.current(v_limit - 1e-9)
        above = dev.current(v_limit + 1e-9)
        assert np.isclose(below, above, rtol=1e-6)

    def test_limited_region_finite(self):
        dev = Diode("D1", "a", "b")
        assert np.isfinite(dev.current(100.0))
        assert np.isfinite(dev.conductance(100.0))

    @given(st.floats(min_value=-2.0, max_value=0.9))
    def test_jacobians(self, v):
        check_device_jacobians(Diode("D1", "a", "b"), [v, 0.0])


class TestControlledSources:
    def test_vccs_stamp(self):
        dev = VCCS("G1", "o1", "o2", "c1", "c2", gm=0.1)
        f = dev.f_local(np.array([0.0, 0.0, 2.0, 1.0]))
        np.testing.assert_allclose(f, [0.1, -0.1, 0.0, 0.0])

    def test_vccs_jacobians(self):
        check_device_jacobians(
            VCCS("G1", "o1", "o2", "c1", "c2", gm=0.1), [0.1, 0.0, 1.0, -1.0]
        )

    def test_vcvs_kvl(self):
        dev = VCVS("E1", "o1", "o2", "c1", "c2", mu=10.0)
        u = np.array([5.0, 0.0, 0.5, 0.0, 0.01])
        f = dev.f_local(u)
        assert np.isclose(f[4], 0.0)  # 5 - 10*0.5 = 0

    def test_vcvs_jacobians(self):
        check_device_jacobians(
            VCVS("E1", "o1", "o2", "c1", "c2", mu=3.0),
            [1.0, 0.0, 0.4, 0.1, 0.02],
        )


class TestMemsVaractor:
    def make(self, damping=1e-4):
        return MemsVaractor(
            "M1", "a", "b", control=DC(1.5), c0=100e-12, z_scale=1e-6,
            mass=1e-9, damping=damping, stiffness=221.0, force_gain=4.5e-5,
        )

    def test_capacitance_decreases_with_displacement(self):
        dev = self.make()
        assert dev.capacitance(0.0) == pytest.approx(100e-12)
        assert dev.capacitance(1e-6) < dev.capacitance(0.0)

    def test_capacitance_even_in_z(self):
        dev = self.make()
        assert dev.capacitance(5e-7) == pytest.approx(dev.capacitance(-5e-7))

    def test_dcapacitance_matches_fd(self):
        dev = self.make()
        z = 4e-7
        step = 1e-13
        fd = (dev.capacitance(z + step) - dev.capacitance(z - step)) / (2 * step)
        assert np.isclose(dev.dcapacitance_dz(z), fd, rtol=1e-5)

    def test_static_displacement_balances_spring(self):
        dev = self.make()
        z_eq = dev.static_displacement(1.5)
        assert np.isclose(dev.stiffness * z_eq, dev.force_gain * 1.5**2)

    def test_force_follows_square_of_control(self):
        dev = MemsVaractor(
            "M1", "a", "b", control=Sine(amplitude=1.0, frequency=1.0,
                                         offset=1.0),
            c0=1e-12, z_scale=1e-6, mass=1e-9, damping=1e-4, stiffness=100.0,
            force_gain=2.0,
        )
        assert np.isclose(dev.force(0.25), 2.0 * 4.0)  # Vc=2 at t=0.25

    def test_jacobians_at_operating_point(self):
        dev = self.make()
        # Typical operating values: volts, displacement ~0.5 um, velocity.
        u = np.array([1.2, 0.0, 4.5e-7, 1e-3])
        q_scale = np.array([1e-10, 1e-10, 1e-6, 1e-12])

        def q_scaled(uu):
            return dev.q_local(uu) / q_scale

        analytic = dev.dq_local(u) / q_scale[:, None]
        numeric = finite_difference_jacobian(q_scaled, u, eps=1e-9)
        assert jacobian_error(analytic, numeric) < 1e-4
        check_jac = jacobian_error(
            dev.df_local(u), finite_difference_jacobian(dev.f_local, u)
        )
        assert check_jac < 1e-6

    def test_rejects_negative_damping(self):
        with pytest.raises(DeviceError):
            self.make(damping=-1.0)

    def test_internal_names(self):
        assert self.make().internal_names == ("z", "u")
