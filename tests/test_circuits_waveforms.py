"""Tests for source waveforms."""

import numpy as np
import pytest

from repro.circuits.waveforms import (
    DC,
    CallableWaveform,
    Cosine,
    PiecewiseLinear,
    Pulse,
    Sine,
    as_waveform,
)
from repro.errors import ValidationError


class TestDC:
    def test_scalar_and_array(self):
        wave = DC(2.5)
        assert wave(0.0) == 2.5
        np.testing.assert_allclose(wave(np.array([0.0, 1.0])), [2.5, 2.5])

    def test_aperiodic(self):
        assert DC(1.0).period is None


class TestSine:
    def test_amplitude_offset(self):
        wave = Sine(amplitude=2.0, frequency=1.0, offset=1.0)
        assert np.isclose(wave(0.25), 3.0)
        assert np.isclose(wave(0.0), 1.0)

    def test_period_metadata(self):
        assert np.isclose(Sine(frequency=50.0).period, 0.02)

    def test_delay_shifts(self):
        wave = Sine(frequency=1.0, delay=0.25)
        assert np.isclose(wave(0.5), Sine(frequency=1.0)(0.25))

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValidationError):
            Sine(frequency=0.0)

    def test_cosine_is_shifted_sine(self):
        t = np.linspace(0, 1, 17)
        np.testing.assert_allclose(
            Cosine(frequency=2.0)(t), np.cos(4 * np.pi * t), atol=1e-12
        )


class TestPiecewiseLinear:
    def test_interpolates(self):
        wave = PiecewiseLinear([0.0, 1.0, 2.0], [0.0, 2.0, 0.0])
        assert np.isclose(wave(0.5), 1.0)
        assert np.isclose(wave(1.5), 1.0)

    def test_clamps_outside(self):
        wave = PiecewiseLinear([0.0, 1.0], [1.0, 3.0])
        assert wave(-5.0) == 1.0
        assert wave(5.0) == 3.0

    def test_rejects_nonincreasing_times(self):
        with pytest.raises(ValidationError):
            PiecewiseLinear([0.0, 0.0], [1.0, 2.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValidationError):
            PiecewiseLinear([0.0, 1.0], [1.0])


class TestPulse:
    def test_levels(self):
        wave = Pulse(low=0.0, high=1.0, rise=0.1, fall=0.1, width=0.3,
                     period=1.0)
        assert np.isclose(wave(0.05), 0.5)  # mid-rise
        assert np.isclose(wave(0.2), 1.0)  # flat top
        assert np.isclose(wave(0.45), 0.5)  # mid-fall
        assert np.isclose(wave(0.9), 0.0)  # low

    def test_periodicity(self):
        wave = Pulse(width=0.3, rise=0.05, fall=0.05, period=1.0)
        t = np.linspace(0, 1, 33)
        np.testing.assert_allclose(wave(t), wave(t + 3.0), atol=1e-12)

    def test_rejects_overfull_period(self):
        with pytest.raises(ValidationError):
            Pulse(rise=0.5, fall=0.5, width=0.5, period=1.0)


class TestCallableAndCoercion:
    def test_callable_wraps(self):
        wave = CallableWaveform(lambda t: t * 2.0)
        assert wave(3.0) == 6.0
        np.testing.assert_allclose(wave(np.array([1.0, 2.0])), [2.0, 4.0])

    def test_rejects_noncallable(self):
        with pytest.raises(ValidationError):
            CallableWaveform(42)

    def test_as_waveform_passthrough(self):
        wave = Sine()
        assert as_waveform(wave) is wave

    def test_as_waveform_number(self):
        assert isinstance(as_waveform(3.0), DC)

    def test_as_waveform_callable(self):
        wave = as_waveform(lambda t: t)
        assert wave(2.0) == 2.0
