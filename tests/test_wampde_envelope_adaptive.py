"""Tests for the adaptive WaMPDE envelope driver, harmonic traces and
iterative-linear-solver pass-through."""

import numpy as np
import pytest

from repro.circuits.library import MemsVcoDae, VcoParams
from repro.errors import SimulationError
from repro.linalg import GmresLinearSolver
from repro.wampde import (
    WampdeEnvelopeOptions,
    solve_wampde_envelope,
    solve_wampde_envelope_adaptive,
)


def fourier_options(**kwargs):
    """Adaptive runs use the paper's eq.-20 (Fourier) phase anchor — the
    derivative anchor can degenerate at the frequency-swing extremes."""
    return WampdeEnvelopeOptions(phase_condition="fourier", **kwargs)


@pytest.fixture(scope="module")
def vco_fourier_ic():
    """Vacuum-VCO initial condition solved with the Fourier anchor."""
    from repro.circuits.library import MemsVcoDae, T_NOMINAL, VcoParams
    from repro.wampde import oscillator_initial_condition

    params = VcoParams.vacuum()
    unforced = MemsVcoDae(params, constant_control=True)
    samples, f0 = oscillator_initial_condition(
        unforced, num_t1=25, period_guess=T_NOMINAL,
        phase_condition="fourier",
    )
    return params, samples, f0


class TestAdaptiveDriver:
    def test_unforced_takes_large_steps(self, vdp_limit_cycle):
        """With nothing happening, the controller must grow the step."""
        dae, hb = vdp_limit_cycle
        env = solve_wampde_envelope_adaptive(
            dae, hb.samples, hb.frequency, 0.0, 200.0
        )
        np.testing.assert_allclose(env.omega, hb.frequency, rtol=1e-5)
        # Resolving 200 time units uniformly at the accuracy this achieves
        # would need far more steps; the controller coasts through.
        assert env.stats["steps"] < 120

    def test_matches_fixed_step_on_vco(self, vco_fourier_ic):
        """Adaptive and fine fixed-step omega traces agree."""
        params, samples, f0 = vco_fourier_ic
        forced = MemsVcoDae(params)
        fixed = solve_wampde_envelope(
            forced, samples, f0, 0.0, 20e-6, 800, fourier_options()
        )
        adaptive = solve_wampde_envelope_adaptive(
            forced, samples, f0, 0.0, 20e-6,
            options=fourier_options(rtol=1e-6, atol=1e-9),
        )
        probe = np.linspace(1e-6, 19e-6, 40)
        np.testing.assert_allclose(
            adaptive.local_frequency(probe),
            fixed.local_frequency(probe),
            rtol=2e-3,
        )

    def test_tolerance_controls_step_count(self, vco_fourier_ic):
        params, samples, f0 = vco_fourier_ic
        forced = MemsVcoDae(params)
        loose = solve_wampde_envelope_adaptive(
            forced, samples, f0, 0.0, 15e-6,
            options=fourier_options(rtol=1e-4, atol=1e-7),
        )
        tight = solve_wampde_envelope_adaptive(
            forced, samples, f0, 0.0, 15e-6,
            options=fourier_options(rtol=1e-6, atol=1e-9),
        )
        assert tight.stats["steps"] > 1.5 * loose.stats["steps"]

    def test_error_scales_with_tolerance(self, vco_fourier_ic):
        params, samples, f0 = vco_fourier_ic
        forced = MemsVcoDae(params)
        reference = solve_wampde_envelope(
            forced, samples, f0, 0.0, 15e-6, 1200, fourier_options()
        )
        probe = np.linspace(1e-6, 14e-6, 30)
        errors = {}
        for rtol in (1e-4, 1e-6):
            run = solve_wampde_envelope_adaptive(
                forced, samples, f0, 0.0, 15e-6,
                options=fourier_options(rtol=rtol, atol=rtol * 1e-3),
            )
            errors[rtol] = np.max(np.abs(
                run.local_frequency(probe) / reference.local_frequency(probe)
                - 1.0
            ))
        assert errors[1e-6] < 0.3 * errors[1e-4]

    def test_reaches_stop_time(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        env = solve_wampde_envelope_adaptive(
            dae, hb.samples, hb.frequency, 0.0, 50.0
        )
        assert np.isclose(env.t2[-1], 50.0)

    def test_max_steps_guard(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        with pytest.raises(SimulationError, match="max_steps"):
            solve_wampde_envelope_adaptive(
                dae, hb.samples, hb.frequency, 0.0, 50.0,
                dt2_initial=1e-3,
                options=WampdeEnvelopeOptions(dt2_max=1e-3),
                max_steps=50,
            )


class TestHarmonicTrace:
    def test_fundamental_magnitude(self, vdp_limit_cycle):
        """|X_1| of the van der Pol cycle is ~1 (amplitude 2 waveform)."""
        dae, hb = vdp_limit_cycle
        env = solve_wampde_envelope(dae, hb.samples, hb.frequency, 0.0, 10.0, 20)
        trace = env.harmonic_trace("y", 1)
        assert trace.shape == (env.t2.size,)
        np.testing.assert_allclose(np.abs(trace), 1.0, atol=0.05)

    def test_conjugate_symmetry(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        env = solve_wampde_envelope(dae, hb.samples, hb.frequency, 0.0, 5.0, 10)
        plus = env.harmonic_trace(0, 1)
        minus = env.harmonic_trace(0, -1)
        np.testing.assert_allclose(plus, np.conj(minus), atol=1e-12)

    def test_dc_harmonic_real(self, vco_initial_condition):
        params, samples, f0 = vco_initial_condition
        forced = MemsVcoDae(params)
        env = solve_wampde_envelope(forced, samples, f0, 0.0, 5e-6, 25)
        dc = env.harmonic_trace("Cmems.z", 0)
        np.testing.assert_allclose(dc.imag, 0.0, atol=1e-15)
        assert np.all(dc.real > 0)  # displacement stays positive

    def test_rejects_unrepresentable_harmonic(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        env = solve_wampde_envelope(dae, hb.samples, hb.frequency, 0.0, 2.0, 4)
        with pytest.raises(ValueError, match="harmonic"):
            env.harmonic_trace(0, 13)


class TestIterativeLinearSolver:
    def test_gmres_matches_direct(self, vco_initial_condition):
        """GMRES+ILU per-step solves reproduce the direct-LU solution."""
        params, samples, f0 = vco_initial_condition
        forced = MemsVcoDae(params)
        direct = solve_wampde_envelope(forced, samples, f0, 0.0, 8e-6, 80)
        gmres = solve_wampde_envelope(
            forced, samples, f0, 0.0, 8e-6, 80,
            WampdeEnvelopeOptions(linear_solver=GmresLinearSolver(rtol=1e-12)),
        )
        np.testing.assert_allclose(gmres.omega, direct.omega, rtol=1e-6)
        np.testing.assert_allclose(
            gmres.samples, direct.samples, atol=1e-6
        )


class TestIntegratorVariants:
    def test_theta_rejects_out_of_range(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        with pytest.raises(SimulationError, match="theta"):
            solve_wampde_envelope(
                dae, hb.samples, hb.frequency, 0.0, 1.0, 2,
                WampdeEnvelopeOptions(integrator="theta", theta=0.3),
            )

    @pytest.mark.parametrize("integrator", ["theta", "trap", "be"])
    def test_all_integrators_consistent_on_vdp(self, vdp_limit_cycle,
                                               integrator):
        dae, hb = vdp_limit_cycle
        env = solve_wampde_envelope(
            dae, hb.samples, hb.frequency, 0.0, 10.0, 50,
            WampdeEnvelopeOptions(integrator=integrator),
        )
        np.testing.assert_allclose(env.omega, hb.frequency, rtol=1e-6)
