"""Tests for frequency sweeps (HB continuation)."""

import numpy as np
import pytest
from dataclasses import replace

from repro.circuits.library import MemsVcoDae, T_NOMINAL, VcoParams
from repro.dae import VanDerPolDae
from repro.steadystate import oscillator_frequency_sweep


class TestVcoTuningCurve:
    @pytest.fixture(scope="class")
    def tuning(self):
        base = VcoParams.vacuum()

        def factory(vc):
            return MemsVcoDae(
                replace(base, control_offset=vc), constant_control=True
            )

        values = np.linspace(0.4, 2.6, 9)
        return base, oscillator_frequency_sweep(
            factory, values, period_guess=T_NOMINAL
        )

    def test_nominal_anchor(self, tuning):
        """The sweep passes through the paper's 0.75 MHz @ 1.5 V point."""
        _base, sweep = tuning
        idx = np.argmin(np.abs(sweep.values - 1.5))
        assert abs(sweep.frequencies[idx] - 0.75e6) / 0.75e6 < 0.01

    def test_monotone_tuning(self, tuning):
        _base, sweep = tuning
        assert np.all(np.diff(sweep.frequencies) > 0)

    def test_tracks_static_law_with_growing_pulling(self, tuning):
        """The oscillating frequency follows the linear-tank law, pulled
        below it by the cubic resistor; the pulling grows with Vc because
        the effective van der Pol parameter ~ g1*sqrt(L/C) grows as the
        capacitance shrinks."""
        base, sweep = tuning
        law = base.static_frequency(sweep.values) / np.sqrt(0.9557)
        deviation = (sweep.frequencies - law) / law
        assert np.all(deviation < 0)          # always pulled downward
        assert np.all(np.abs(deviation) < 0.15)
        assert np.all(np.diff(np.abs(deviation)) > 0)  # grows with Vc

    def test_amplitudes_reported(self, tuning):
        _base, sweep = tuning
        assert np.all(sweep.amplitudes > 3.0)  # healthy ~4 Vpp everywhere


class TestSweepMechanics:
    def test_single_value(self):
        sweep = oscillator_frequency_sweep(
            lambda _v: VanDerPolDae(mu=0.2), [0.0], period_guess=6.3
        )
        expected = VanDerPolDae(0.2).small_mu_angular_frequency() / (2 * np.pi)
        assert abs(sweep.frequencies[0] - expected) / expected < 5e-3

    def test_continuation_over_mu(self):
        """Sweep the van der Pol nonlinearity: frequency falls with mu."""
        sweep = oscillator_frequency_sweep(
            lambda mu: VanDerPolDae(mu=float(mu)),
            np.linspace(0.2, 1.2, 6),
            period_guess=6.3,
        )
        assert np.all(np.diff(sweep.frequencies) < 0)
        # Amplitude stays near 2 (peak-to-peak ~4) across the range.
        np.testing.assert_allclose(sweep.amplitudes, 4.0, atol=0.35)

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            oscillator_frequency_sweep(
                lambda _v: VanDerPolDae(), [], period_guess=6.3
            )


class _NanVdp(VanDerPolDae):
    """Van der Pol whose statics go NaN — HB can never converge on it."""

    def f(self, x):
        return np.full(2, np.nan)

    def f_batch(self, states):
        return np.full(np.asarray(states).shape, np.nan)

    def qf(self, x):
        return self.q(x), self.f(x)


class TestSweepFailurePaths:
    """ConvergenceError mid-sweep must leave a truncated-but-consistent
    FrequencySweepResult (and name the failing value when raising)."""

    @staticmethod
    def _broken_factory(broken_above):
        def factory(mu):
            if mu > broken_above:
                return _NanVdp(mu=0.2)
            return VanDerPolDae(mu=float(mu))

        return factory

    def test_continuation_truncate_returns_consistent_prefix(self):
        values = np.array([0.2, 0.5, 5.0, 0.4])
        sweep = oscillator_frequency_sweep(
            self._broken_factory(1.0), values, period_guess=6.3,
            on_failure="truncate",
        )
        np.testing.assert_array_equal(sweep.values, values[:2])
        assert sweep.frequencies.shape == (2,)
        assert sweep.amplitudes.shape == (2,)
        assert len(sweep.solver_stats) == 2
        assert np.all(np.isfinite(sweep.frequencies))

    def test_continuation_raise_names_value_and_attaches_partial(self):
        from repro.errors import ConvergenceError

        values = np.array([0.2, 0.5, 5.0])
        # The bisection retries name the innermost failing value; the
        # outer message always carries the "frequency sweep failed"
        # context.
        with pytest.raises(ConvergenceError,
                           match="frequency sweep failed") as excinfo:
            oscillator_frequency_sweep(
                self._broken_factory(1.0), values, period_guess=6.3,
            )
        partial = excinfo.value.partial_result
        np.testing.assert_array_equal(partial.values, values[:2])
        assert partial.frequencies.shape == (2,)
        assert partial.amplitudes.shape == (2,)

    def test_ensemble_truncate_returns_consistent_prefix(self):
        from repro.steadystate import ensemble_frequency_sweep

        def factory(mu):
            # A NaN member fails already at the DC stage — it must be
            # truncated away instead of poisoning the lock-step settle.
            if mu > 1.0:
                return _NanVdp(mu=0.2)
            return VanDerPolDae(mu=float(mu))

        values = np.array([0.2, 0.6, 5.0, 0.4])
        sweep = ensemble_frequency_sweep(
            factory, values, period_guess=6.3, on_failure="truncate",
        )
        np.testing.assert_array_equal(sweep.values, values[:2])
        assert sweep.frequencies.shape == (2,)
        assert sweep.amplitudes.shape == (2,)
        assert len(sweep.solver_stats) == 2
        assert np.all(np.isfinite(sweep.frequencies))

    def test_ensemble_raise_names_value_and_attaches_partial(self):
        from repro.errors import ConvergenceError
        from repro.steadystate import ensemble_frequency_sweep

        def factory(mu):
            if mu > 1.0:
                return _NanVdp(mu=0.2)
            return VanDerPolDae(mu=float(mu))

        values = np.array([0.2, 0.6, 5.0])
        with pytest.raises(ConvergenceError, match="5.0") as excinfo:
            ensemble_frequency_sweep(factory, values, period_guess=6.3)
        partial = excinfo.value.partial_result
        np.testing.assert_array_equal(partial.values, values[:2])
        assert partial.frequencies.shape == (2,)
        assert partial.amplitudes.shape == (2,)

    def test_invalid_on_failure_rejected(self):
        with pytest.raises(ValueError, match="on_failure"):
            oscillator_frequency_sweep(
                lambda _v: VanDerPolDae(), [0.2], period_guess=6.3,
                on_failure="ignore",
            )
