"""Tests for the transient engine: integrators, convergence orders, events."""

import numpy as np
import pytest

from repro.dae import ForcedDecayDae, HarmonicOscillatorDae, LinearRCDae
from repro.errors import SimulationError
from repro.transient import (
    Bdf2,
    INTEGRATORS,
    TransientOptions,
    TransientResult,
    rising_level_crossings,
    simulate_transient,
    zero_crossings,
)
from repro.transient.integrators import get_integrator


class TestIntegratorRegistry:
    def test_registry_contents(self):
        assert set(INTEGRATORS) == {"be", "trap", "bdf2"}

    def test_get_integrator_by_name(self):
        assert get_integrator("TRAP").name == "trap"

    def test_get_integrator_passthrough(self):
        inst = Bdf2()
        assert get_integrator(inst) is inst

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown integrator"):
            get_integrator("rk4")


class TestExactness:
    """Each implicit method must be exact on problems in its order class."""

    def test_be_exact_on_constant(self):
        dae = ForcedDecayDae(rate=1.0, forcing=lambda t: 1.0)
        result = simulate_transient(
            dae, [1.0], 0.0, 1.0, TransientOptions(integrator="be", dt=0.1)
        )
        np.testing.assert_allclose(result.x[:, 0], 1.0, atol=1e-12)

    def test_trap_preserves_energy_of_lc(self):
        """Trapezoidal is symplectic-like on the LC tank: no amplitude decay."""
        dae = HarmonicOscillatorDae()
        result = simulate_transient(
            dae, [1.0, 0.0], 0.0, 20 * np.pi,
            TransientOptions(integrator="trap", dt=0.05),
        )
        energies = np.array([dae.energy(s) for s in result.x])
        np.testing.assert_allclose(energies, energies[0], rtol=1e-10)

    def test_be_damps_lc_amplitude(self):
        """Backward Euler artificially damps oscillations — by design."""
        dae = HarmonicOscillatorDae()
        result = simulate_transient(
            dae, [1.0, 0.0], 0.0, 20 * np.pi,
            TransientOptions(integrator="be", dt=0.05),
        )
        assert dae.energy(result.x[-1]) < 0.6 * dae.energy(result.x[0])


class TestConvergenceOrders:
    @staticmethod
    def _error_at(integrator, dt):
        dae = LinearRCDae(resistance=1.0, capacitance=1.0, amplitude=1.0,
                          omega=2.0)
        v0 = 0.4
        result = simulate_transient(
            dae, [v0], 0.0, 2.0,
            TransientOptions(integrator=integrator, dt=dt),
        )
        exact = dae.transient_response(result.t[-1], v0)
        return abs(result.x[-1, 0] - exact)

    @pytest.mark.parametrize(
        "integrator,expected_order",
        [("be", 1), ("trap", 2), ("bdf2", 2)],
    )
    def test_order(self, integrator, expected_order):
        err_coarse = self._error_at(integrator, 0.02)
        err_fine = self._error_at(integrator, 0.01)
        observed = np.log2(err_coarse / err_fine)
        assert observed > expected_order - 0.35, (
            f"{integrator}: observed order {observed:.2f}, "
            f"expected ~{expected_order}"
        )


class TestEngineBehaviour:
    def test_fixed_step_requires_dt(self):
        dae = ForcedDecayDae()
        with pytest.raises(SimulationError, match="dt"):
            simulate_transient(dae, [0.0], 0.0, 1.0, TransientOptions(dt=None))

    def test_rejects_reversed_window(self):
        dae = ForcedDecayDae()
        with pytest.raises(SimulationError):
            simulate_transient(
                dae, [0.0], 1.0, 0.0, TransientOptions(dt=0.1)
            )

    def test_rejects_wrong_initial_size(self):
        dae = ForcedDecayDae()
        with pytest.raises(SimulationError, match="length"):
            simulate_transient(
                dae, [0.0, 1.0], 0.0, 1.0, TransientOptions(dt=0.1)
            )

    def test_reaches_exact_stop_time(self):
        dae = ForcedDecayDae()
        result = simulate_transient(
            dae, [1.0], 0.0, 1.0, TransientOptions(dt=0.3)
        )
        assert np.isclose(result.t[-1], 1.0)

    def test_stats_populated(self):
        dae = ForcedDecayDae()
        result = simulate_transient(
            dae, [1.0], 0.0, 1.0, TransientOptions(dt=0.1)
        )
        assert result.stats["steps"] == 10
        assert result.stats["newton_iterations"] >= 10

    def test_store_every_decimates(self):
        dae = ForcedDecayDae()
        result = simulate_transient(
            dae, [1.0], 0.0, 1.0, TransientOptions(dt=0.01, store_every=10)
        )
        assert len(result) <= 12

    def test_adaptive_meets_tolerance(self):
        dae = LinearRCDae(resistance=1.0, capacitance=1.0, omega=5.0)
        options = TransientOptions(
            integrator="trap", dt=0.05, adaptive=True, rtol=1e-7, atol=1e-10
        )
        result = simulate_transient(dae, [0.0], 0.0, 3.0, options)
        exact = dae.transient_response(result.t, 0.0)
        assert np.max(np.abs(result.x[:, 0] - exact)) < 1e-4

    def test_adaptive_rejects_steps_on_sharp_forcing(self):
        # A fast step in the forcing should trigger at least one rejection
        # or a visible step-size reduction.
        sharp = ForcedDecayDae(rate=1.0, forcing=lambda t: 0.0 if t < 1.0 else 5.0)
        options = TransientOptions(
            integrator="trap", dt=0.5, adaptive=True, rtol=1e-8, atol=1e-12
        )
        result = simulate_transient(sharp, [0.0], 0.0, 3.0, options)
        assert (
            result.stats["rejected_steps"] > 0
            or np.min(np.diff(result.t)) < 0.05
        )

    def test_max_steps_guard(self):
        dae = ForcedDecayDae()
        with pytest.raises(SimulationError, match="max_steps"):
            simulate_transient(
                dae, [1.0], 0.0, 1.0,
                TransientOptions(dt=1e-4, max_steps=100),
            )


class TestTransientResult:
    def make(self):
        t = np.linspace(0, 1, 11)
        x = np.stack([np.sin(t), np.cos(t)], axis=1)
        return TransientResult(t, x, ("s", "c"), {"steps": 10})

    def test_column_by_name_and_index(self):
        result = self.make()
        np.testing.assert_allclose(result.column("s"), result.column(0))
        np.testing.assert_allclose(result["c"], np.cos(result.t))

    def test_sample_interpolates(self):
        result = self.make()
        mid = result.sample(0.05, "s")
        assert np.isclose(mid, 0.5 * (np.sin(0.0) + np.sin(0.1)), atol=1e-3)

    def test_sample_all_variables(self):
        result = self.make()
        values = result.sample([0.2, 0.4])
        assert values.shape == (2, 2)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            TransientResult(np.zeros(3), np.zeros((4, 2)), ("a", "b"))

    def test_final_state_is_copy(self):
        result = self.make()
        final = result.final_state()
        final[:] = 99.0
        assert not np.allclose(result.x[-1], 99.0)


class TestEvents:
    def test_rising_crossings_of_sine(self):
        t = np.linspace(0, 2, 2001)
        y = np.sin(2 * np.pi * t)
        crossings = zero_crossings(t, y, direction=+1)
        # Exact zero at t=0 counts as a rising crossing; t=2 is the final
        # sample and cannot start an interval.
        np.testing.assert_allclose(crossings, [0.0, 1.0], atol=1e-5)

    def test_falling_crossings(self):
        t = np.linspace(0, 2, 2001)
        y = np.sin(2 * np.pi * t)
        crossings = zero_crossings(t, y, direction=-1)
        np.testing.assert_allclose(crossings, [0.5, 1.5], atol=1e-5)

    def test_both_directions(self):
        t = np.linspace(0, 2, 2001)
        y = np.sin(2 * np.pi * t)
        assert zero_crossings(t, y, direction=0).size == 4

    def test_interpolation_accuracy(self):
        t = np.array([0.0, 1.0])
        y = np.array([-1.0, 3.0])
        np.testing.assert_allclose(zero_crossings(t, y), [0.25])

    def test_level_crossings(self):
        t = np.linspace(0, 1, 101)
        y = t.copy()
        np.testing.assert_allclose(
            rising_level_crossings(t, y, 0.5), [0.5], atol=1e-10
        )

    def test_no_crossings(self):
        assert zero_crossings([0, 1], [1.0, 2.0]).size == 0

    def test_crossing_times_from_result(self):
        t = np.linspace(0, 1, 501)
        x = np.sin(2 * np.pi * 2 * t)[:, None]
        result = TransientResult(t, x, ("y",))
        crossings = result.crossing_times("y", level=0.0, direction=+1)
        np.testing.assert_allclose(crossings, [0.0, 0.5], atol=1e-4)
