"""Tests for the WaMPDE envelope solver — the paper's core method."""

import numpy as np
import pytest

from repro.dae import VanDerPolDae
from repro.errors import SimulationError
from repro.wampde import (
    WampdeEnvelopeOptions,
    solve_wampde_envelope,
)


class TestInputValidation:
    def test_rejects_even_t1_count(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        with pytest.raises(Exception):
            solve_wampde_envelope(
                dae, hb.samples[:24], hb.frequency, 0.0, 1.0, 10
            )

    def test_rejects_variable_mismatch(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        with pytest.raises(SimulationError, match="variables"):
            solve_wampde_envelope(
                dae, hb.samples[:, :1], hb.frequency, 0.0, 1.0, 10
            )

    def test_rejects_reversed_window(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        with pytest.raises(SimulationError):
            solve_wampde_envelope(dae, hb.samples, hb.frequency, 1.0, 0.0, 10)

    def test_rejects_bad_integrator(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        with pytest.raises(SimulationError, match="integrator"):
            solve_wampde_envelope(
                dae, hb.samples, hb.frequency, 0.0, 1.0, 10,
                WampdeEnvelopeOptions(integrator="rk4"),
            )

    def test_rejects_1d_initial(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        with pytest.raises(SimulationError, match="2-D"):
            solve_wampde_envelope(
                dae, hb.samples[0], hb.frequency, 0.0, 1.0, 10
            )


class TestUnforcedInvariance:
    """With constant forcing the envelope must stay on the limit cycle:
    omega(t2) == free-running frequency, xhat independent of t2."""

    @pytest.mark.parametrize("integrator", ["be", "trap"])
    def test_omega_constant(self, vdp_limit_cycle, integrator):
        dae, hb = vdp_limit_cycle
        env = solve_wampde_envelope(
            dae, hb.samples, hb.frequency, 0.0, 20.0, 40,
            WampdeEnvelopeOptions(integrator=integrator),
        )
        np.testing.assert_allclose(env.omega, hb.frequency, rtol=1e-6)

    def test_samples_stationary(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        env = solve_wampde_envelope(dae, hb.samples, hb.frequency, 0.0, 20.0, 40)
        drift = np.max(np.abs(env.samples[-1] - env.samples[0]))
        assert drift < 1e-6

    def test_reconstruction_matches_transient(self, vdp_limit_cycle):
        """Paper eq. 15: x(t)=xhat(phi(t),t) must solve the original DAE."""
        from repro.transient import TransientOptions, simulate_transient

        dae, hb = vdp_limit_cycle
        env = solve_wampde_envelope(dae, hb.samples, hb.frequency, 0.0, 30.0, 60)
        x0 = env.samples[0, 0]  # state at t1=0, t2=0
        transient = simulate_transient(
            dae, x0, 0.0, 30.0, TransientOptions(integrator="trap", dt=0.005)
        )
        times = np.linspace(0.0, 30.0, 600)
        rec = env.reconstruct(0, times)
        ref = transient.sample(times, 0)
        assert np.max(np.abs(rec - ref)) < 5e-3


class TestForcedVdp:
    """Van der Pol with slowly ramped 'stiffness' forcing shows FM."""

    @staticmethod
    def forced_vdp(amp, slow_freq):
        class RampedVdp(VanDerPolDae):
            """Slow additive forcing on the velocity equation."""

            def b(self, t):
                return np.array(
                    [0.0, amp * np.sin(2 * np.pi * slow_freq * t)]
                )

            def b_batch(self, times):
                times = np.asarray(times, dtype=float).ravel()
                out = np.zeros((times.size, 2))
                out[:, 1] = amp * np.sin(2 * np.pi * slow_freq * times)
                return out

        return RampedVdp(mu=0.2)

    def test_omega_responds_to_forcing(self, vdp_limit_cycle):
        _dae, hb = vdp_limit_cycle
        forced = self.forced_vdp(amp=0.5, slow_freq=hb.frequency / 40.0)
        env = solve_wampde_envelope(
            forced, hb.samples, hb.frequency, 0.0, 40.0 / hb.frequency / 2,
            200,
        )
        # Forcing shifts the operating point; omega must move measurably
        # but stay near the free-running value.
        assert env.omega.std() > 1e-4 * hb.frequency
        assert abs(env.omega.mean() - hb.frequency) < 0.2 * hb.frequency

    def test_phase_condition_held_every_step(self, vdp_limit_cycle):
        from repro.phase_conditions import FourierImagAnchor

        _dae, hb = vdp_limit_cycle
        forced = self.forced_vdp(amp=0.5, slow_freq=hb.frequency / 40.0)
        env = solve_wampde_envelope(
            forced, hb.samples, hb.frequency, 0.0, 100.0, 100
        )
        anchor = FourierImagAnchor(variable=0)  # the default (eq. 20)
        for row in env.samples[:: len(env.samples) // 10]:
            assert abs(anchor.residual(row)) < 1e-6


class TestResultContainer:
    def test_variable_index_by_name(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        env = solve_wampde_envelope(dae, hb.samples, hb.frequency, 0.0, 5.0, 10)
        assert env.variable_index("y") == 0
        assert env.variable_index(1) == 1

    def test_bivariate_export(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        env = solve_wampde_envelope(dae, hb.samples, hb.frequency, 0.0, 5.0, 10)
        biv = env.bivariate("y")
        assert biv.num_t1 == 25
        assert biv.num_t2 == 11

    def test_store_every(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        env = solve_wampde_envelope(
            dae, hb.samples, hb.frequency, 0.0, 5.0, 20,
            WampdeEnvelopeOptions(store_every=5),
        )
        assert len(env.t2) <= 6

    def test_local_frequency_interpolation(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        env = solve_wampde_envelope(dae, hb.samples, hb.frequency, 0.0, 5.0, 10)
        freq = env.local_frequency(2.5)
        assert np.isclose(freq, hb.frequency, rtol=1e-5)

    def test_warping_total_cycles(self, vdp_limit_cycle):
        """Over t2 span T with constant omega, phi advances omega*T cycles."""
        dae, hb = vdp_limit_cycle
        span = 20.0
        env = solve_wampde_envelope(
            dae, hb.samples, hb.frequency, 0.0, span, 40
        )
        warp = env.warping()
        assert np.isclose(
            warp.total_cycles(), hb.frequency * span, rtol=1e-6
        )


class TestEvaluationMemoisation:
    """The stepper memoises (iterate, q_flat, f_flat): jacobian(z) and the
    post-step rhs_terms() reuse what residual(z) just computed."""

    def test_q_batch_not_recomputed_per_jacobian(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        calls = {"q": 0}

        class CountingDae(VanDerPolDae):
            def q_batch(self, states):
                calls["q"] += 1
                return super().q_batch(states)

        counting = CountingDae(mu=0.2)
        env = solve_wampde_envelope(
            counting, hb.samples, hb.frequency, 0.0, 2.0, 4
        )
        iters = env.stats["newton_iterations"]
        steps = env.stats["steps"]
        # Memoised: one evaluation for the initial rhs_terms plus one per
        # line-search trial (>= one per Newton iteration).  Without the
        # memo, jacobian(z), residual(z0) and rhs_terms() would each add
        # their own q_batch per step/iteration (> 2x this bound).
        assert calls["q"] <= 1 + iters + steps
        # ... and the run still reproduces the limit cycle.
        assert np.allclose(env.omega, hb.frequency, rtol=1e-5)
