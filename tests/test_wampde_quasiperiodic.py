"""Tests for the bi-periodic WaMPDE solver (paper §4.1)."""

import numpy as np
import pytest

from repro.constants import TWO_PI
from repro.dae import VanDerPolDae
from repro.errors import SimulationError
from repro.wampde import solve_wampde_quasiperiodic


def forced_vdp(amp, freq, mu=0.2):
    class ForcedVdp(VanDerPolDae):
        def b(self, t):
            return np.array([0.0, amp * np.sin(TWO_PI * freq * t)])

        def b_batch(self, times):
            times = np.asarray(times, dtype=float).ravel()
            out = np.zeros((times.size, 2))
            out[:, 1] = amp * np.sin(TWO_PI * freq * times)
            return out

    return ForcedVdp(mu=mu)


class TestValidation:
    def test_rejects_even_grid(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        with pytest.raises(Exception):
            solve_wampde_quasiperiodic(
                dae, 10.0, hb.samples, hb.frequency, num_t2=8
            )

    def test_rejects_bad_initial_shape(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        with pytest.raises(SimulationError):
            solve_wampde_quasiperiodic(
                dae, 10.0, hb.samples[None, :, :].repeat(3, axis=0),
                hb.frequency, num_t2=15,
            )

    def test_rejects_wrong_omega_length(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        with pytest.raises(SimulationError, match="omega0"):
            solve_wampde_quasiperiodic(
                dae, 10.0, hb.samples, np.ones(4), num_t2=15
            )


class TestUnforcedConsistency:
    def test_constant_forcing_gives_flat_solution(self, vdp_limit_cycle):
        """b constant: the QP solution must be t2-independent with
        omega equal to the free-running frequency at every t2 point."""
        dae, hb = vdp_limit_cycle
        result = solve_wampde_quasiperiodic(
            dae, 10.0, hb.samples, hb.frequency, num_t2=5
        )
        np.testing.assert_allclose(result.omega, hb.frequency, rtol=1e-7)
        spread = np.max(np.abs(result.samples - result.samples[0]))
        assert spread < 1e-7

    def test_mean_frequency_and_depth(self, vdp_limit_cycle):
        dae, hb = vdp_limit_cycle
        result = solve_wampde_quasiperiodic(
            dae, 10.0, hb.samples, hb.frequency, num_t2=5
        )
        assert np.isclose(result.mean_frequency, hb.frequency, rtol=1e-7)
        assert result.frequency_modulation_depth() < 1e-7


class TestForcedQuasiperiodic:
    def test_slow_forcing_modulates_frequency(self, vdp_limit_cycle):
        """Slow forcing produces T2-periodic omega — FM-quasiperiodicity."""
        _dae, hb = vdp_limit_cycle
        f2 = hb.frequency / 25.0
        dae = forced_vdp(amp=0.5, freq=f2)
        result = solve_wampde_quasiperiodic(
            dae, 1.0 / f2, hb.samples, hb.frequency, num_t2=15
        )
        assert result.frequency_modulation_depth() > 1e-4
        assert abs(result.mean_frequency - hb.frequency) < 0.1 * hb.frequency

    def test_reconstruction_satisfies_original_dae(self, vdp_limit_cycle):
        """Key theorem (paper eq. 14-15): the reconstructed univariate
        signal solves the original forced DAE — verified against direct
        transient integration from the same initial state."""
        from repro.transient import TransientOptions, simulate_transient

        _dae, hb = vdp_limit_cycle
        f2 = hb.frequency / 25.0
        dae = forced_vdp(amp=0.5, freq=f2)
        result = solve_wampde_quasiperiodic(
            dae, 1.0 / f2, hb.samples, hb.frequency, num_t2=15
        )
        times = np.linspace(0.0, 2.0 / f2, 3000)
        rec = result.reconstruct(0, times)
        x0 = result.samples[0, 0]  # t1 = 0, t2 = 0 corner
        transient = simulate_transient(
            dae, x0, 0.0, times[-1],
            TransientOptions(integrator="trap", dt=0.002 / hb.frequency),
        )
        ref = transient.sample(times, 0)
        # Amplitude ~2; phase coherence over ~50 cycles is the hard part.
        assert np.max(np.abs(rec - ref)) < 0.15

    def test_is_mode_locked_negative_for_quasiperiodic(self, vdp_limit_cycle):
        _dae, hb = vdp_limit_cycle
        f2 = hb.frequency / 25.0
        dae = forced_vdp(amp=0.5, freq=f2)
        result = solve_wampde_quasiperiodic(
            dae, 1.0 / f2, hb.samples, hb.frequency, num_t2=15
        )
        assert not result.is_mode_locked(f2)

    def test_bivariate_wraps_periodically(self, vdp_limit_cycle):
        _dae, hb = vdp_limit_cycle
        f2 = hb.frequency / 25.0
        dae = forced_vdp(amp=0.5, freq=f2)
        result = solve_wampde_quasiperiodic(
            dae, 1.0 / f2, hb.samples, hb.frequency, num_t2=15
        )
        biv = result.bivariate(0)
        t1 = np.linspace(0, 1, 7)
        np.testing.assert_allclose(
            biv(t1, 0.0), biv(t1, result.period2), atol=1e-9
        )


class TestVcoQuasiperiodicSteadyState:
    """Cross-validation on the paper's VCO: the settled envelope equals
    the bi-periodic WaMPDE solution (the FM-quasiperiodic steady state)."""

    def test_envelope_tail_matches_qp_solution(self):
        from repro.circuits.library import MemsVcoDae, T_NOMINAL, VcoParams
        from repro.wampde import (
            envelope_to_quasiperiodic_guess,
            oscillator_initial_condition,
            solve_wampde_envelope,
        )

        params = VcoParams.air()
        unforced = MemsVcoDae(params, constant_control=True)
        samples, f0 = oscillator_initial_condition(
            unforced, num_t1=25, period_guess=T_NOMINAL
        )
        forced = MemsVcoDae(params)
        env = solve_wampde_envelope(forced, samples, f0, 0.0, 3e-3, 1200)

        guess, omega_guess = envelope_to_quasiperiodic_guess(
            env, params.control_period, num_t2=25
        )
        qp = solve_wampde_quasiperiodic(
            forced, params.control_period, guess, omega_guess, num_t2=25
        )
        # Seeded Newton converges in a handful of iterations...
        assert qp.newton_iterations <= 6
        # ...and agrees with the settled envelope's frequency trace.
        probe = np.linspace(0.0, params.control_period * 0.99, 30)
        f_env = env.local_frequency(2e-3 + probe)
        f_qp = np.interp(
            np.mod(probe, params.control_period), qp.t2, qp.omega
        )
        np.testing.assert_allclose(f_qp, f_env, rtol=2e-2)

    def test_guess_requires_full_period(self, vdp_limit_cycle):
        from repro.errors import SimulationError
        from repro.wampde import (
            envelope_to_quasiperiodic_guess,
            solve_wampde_envelope,
        )

        dae, hb = vdp_limit_cycle
        env = solve_wampde_envelope(
            dae, hb.samples, hb.frequency, 0.0, 1.0, 4
        )
        with pytest.raises(SimulationError, match="forcing period"):
            envelope_to_quasiperiodic_guess(env, 10.0, num_t2=5)
