"""Tests for the fast transient inner loop.

Covers the pattern-reuse step-Jacobian assembler, the stale-Jacobian
(chord) Newton policy against full Newton on the library's two workhorse
DAEs, the GMRES + frozen-LU-preconditioner path on the largest library
circuit, and the failure-context guarantees of the step controller.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.circuits.library import (
    MemsVcoDae,
    T_NOMINAL,
    VcoParams,
    ring_oscillator_circuit,
)
from repro.dae import FunctionDAE, VanDerPolDae
from repro.errors import SimulationError
from repro.linalg import (
    FrozenFactorization,
    GmresLinearSolver,
    NewtonOptions,
    StaleJacobianNewton,
    TransientStepAssembler,
    newton_solve,
)
from repro.transient import TransientOptions, simulate_transient


def _column_close(a, b, rtol):
    """Column-wise comparison scaled by each column's own magnitude."""
    scale = np.abs(b).max(axis=0)
    scale[scale == 0.0] = 1.0
    return np.abs(a - b).max(axis=0) / scale < rtol


class TestTransientStepAssembler:
    def test_dense_mode_matches_direct(self, rng):
        n = 5
        asm = TransientStepAssembler(np.ones((n, n), bool), np.ones((n, n), bool))
        assert asm.dense
        dq = rng.standard_normal((n, n))
        df = rng.standard_normal((n, n))
        out = asm.refresh(3.0, dq, 0.5, df)
        np.testing.assert_array_equal(out, 3.0 * dq + 0.5 * df)

    def test_sparse_mode_matches_direct(self, rng):
        n = 80
        dq_mask = rng.random((n, n)) < 0.03
        df_mask = rng.random((n, n)) < 0.03
        np.fill_diagonal(dq_mask, True)  # keep the pattern non-singular
        asm = TransientStepAssembler(dq_mask, df_mask)
        assert not asm.dense
        dq = rng.standard_normal((n, n)) * dq_mask
        df = rng.standard_normal((n, n)) * df_mask
        out = asm.refresh(2.0, dq, 1.0, df)
        assert sp.issparse(out)
        np.testing.assert_allclose(out.toarray(), 2.0 * dq + 1.0 * df,
                                   rtol=0, atol=0)

    def test_refresh_reuses_pattern(self, rng):
        n = 80
        mask = rng.random((n, n)) < 0.05
        np.fill_diagonal(mask, True)
        asm = TransientStepAssembler(mask, mask)
        first = asm.refresh(1.0, mask * 1.0, 1.0, mask * 2.0)
        second = asm.refresh(5.0, mask * 1.0, 1.0, mask * 2.0)
        assert first is second  # one owned matrix, data refreshed in place
        np.testing.assert_allclose(second.toarray(), 7.0 * mask)

    def test_rejects_bad_masks(self):
        with pytest.raises(ValueError, match="square"):
            TransientStepAssembler(np.ones((2, 3), bool), np.ones((2, 3), bool))


class TestFrozenFactorization:
    def test_dense_small_and_matrix_rhs(self, rng):
        a = rng.standard_normal((4, 4)) + 4.0 * np.eye(4)
        rhs = rng.standard_normal((4, 3))
        f = FrozenFactorization().factor(a)
        np.testing.assert_allclose(f.solve(rhs), np.linalg.solve(a, rhs),
                                   rtol=1e-10)

    def test_dense_large_uses_lu(self, rng):
        n = FrozenFactorization.INVERSE_LIMIT + 8
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        b = rng.standard_normal(n)
        f = FrozenFactorization().factor(a)
        np.testing.assert_allclose(f.solve(b), np.linalg.solve(a, b),
                                   rtol=1e-10)

    def test_sparse(self, rng):
        n = 30
        a = sp.random(n, n, density=0.2, random_state=1).tocsc() \
            + 5.0 * sp.eye(n, format="csc")
        b = rng.standard_normal(n)
        f = FrozenFactorization().factor(a)
        np.testing.assert_allclose(a @ f.solve(b), b, atol=1e-10)

    def test_solve_before_factor_raises(self):
        with pytest.raises(RuntimeError, match="before factor"):
            FrozenFactorization().solve(np.zeros(2))


class TestStaleJacobianNewton:
    @staticmethod
    def _quadratic_problem():
        def residual(x):
            return np.array([x[0] ** 2 - 2.0, x[1] - x[0]])

        def jacobian(x):
            return np.array([[2.0 * x[0], 0.0], [-1.0, 1.0]])

        return residual, jacobian

    def test_matches_full_newton_solution(self):
        residual, jacobian = self._quadratic_problem()
        options = NewtonOptions(atol=1e-13, rtol=1e-13)
        chord = StaleJacobianNewton(options=options)
        got = chord.solve(residual, jacobian, np.array([1.0, 1.0]))
        ref = newton_solve(residual, jacobian, np.array([1.0, 1.0]),
                           options=options)
        assert got.converged
        np.testing.assert_allclose(got.x, ref.x, rtol=1e-12)

    def test_reuses_factorization_across_solves(self):
        # Linear system: the frozen factors stay exact, so consecutive
        # solves with different right-hand sides never refactorise.
        a = np.array([[3.0, 1.0], [1.0, 2.0]])
        rhs = [np.array([1.0, 0.0]), np.array([0.0, 1.0]),
               np.array([2.0, -1.0])]
        chord = StaleJacobianNewton(options=NewtonOptions(atol=1e-12))
        for b in rhs:
            got = chord.solve(
                lambda x, b=b: a @ x - b, lambda x: a, np.zeros(2)
            )
            assert got.converged
            np.testing.assert_allclose(got.x, np.linalg.solve(a, b),
                                       atol=1e-12)
        assert chord.stats["factorizations"] == 1

    def test_invalidate_forces_refactor(self):
        residual, jacobian = self._quadratic_problem()
        chord = StaleJacobianNewton()
        chord.solve(residual, jacobian, np.array([1.0, 1.0]))
        first = chord.stats["factorizations"]
        chord.invalidate()
        chord.solve(residual, jacobian, np.array([1.0, 1.0]))
        assert chord.stats["factorizations"] == first + 1


class TestChordTransientTrajectories:
    """Stale-Jacobian trajectories must stay within solver tolerance of
    full-Newton trajectories on the library's workhorse DAEs."""

    def test_mems_vco(self):
        dae = MemsVcoDae(VcoParams.air())
        x0 = [1.0, 0.0, 0.0, 0.0]
        horizon = 30 * T_NOMINAL
        opts = dict(integrator="trap", dt=T_NOMINAL / 300)
        fast = simulate_transient(
            dae, x0, 0.0, horizon, TransientOptions(**opts)
        )
        full = simulate_transient(
            dae, x0, 0.0, horizon,
            TransientOptions(**opts, stale_jacobian=False),
        )
        assert np.array_equal(fast.t, full.t)
        assert _column_close(fast.x, full.x, 1e-5).all()
        # The whole point: a handful of factorisations for thousands of steps.
        assert fast.stats["jacobian_factorizations"] < fast.stats["steps"] / 50
        assert fast.stats["newton_failures"] == 0

    def test_van_der_pol(self):
        dae = VanDerPolDae(mu=1.5)  # strongly nonlinear variant
        fast = simulate_transient(
            dae, [2.0, 0.0], 0.0, 30.0,
            TransientOptions(integrator="bdf2", dt=0.01),
        )
        full = simulate_transient(
            dae, [2.0, 0.0], 0.0, 30.0,
            TransientOptions(integrator="bdf2", dt=0.01, stale_jacobian=False),
        )
        assert _column_close(fast.x, full.x, 1e-4).all()

    def test_adaptive_path_still_works(self):
        dae = VanDerPolDae(mu=1.0)
        result = simulate_transient(
            dae, [2.0, 0.0], 0.0, 20.0,
            TransientOptions(integrator="trap", dt=0.05, adaptive=True,
                             rtol=1e-6, atol=1e-9),
        )
        reference = simulate_transient(
            dae, [2.0, 0.0], 0.0, 20.0,
            TransientOptions(integrator="trap", dt=0.002),
        )
        final_ref = reference.x[-1]
        assert np.abs(result.x[-1] - final_ref).max() < 5e-3


class TestGmresFrozenLu:
    def test_converges_on_largest_library_circuit(self):
        # 9-stage ring oscillator: the largest ready-made circuit (n = 9).
        dae = ring_oscillator_circuit(stages=9).to_dae()
        x0 = np.zeros(dae.n)
        x0[0] = 0.5  # kick the ring off its unstable DC point
        horizon = 40e-6
        solver = GmresLinearSolver(rtol=1e-12, preconditioner="lu",
                                   freeze=True)
        gmres_run = simulate_transient(
            dae, x0, 0.0, horizon,
            TransientOptions(integrator="trap", dt=2e-7,
                             linear_solver=solver),
        )
        direct_run = simulate_transient(
            dae, x0, 0.0, horizon,
            TransientOptions(integrator="trap", dt=2e-7),
        )
        assert gmres_run.stats["newton_failures"] == 0
        assert _column_close(gmres_run.x, direct_run.x, 1e-5).all()
        # Frozen factors: far fewer factorisations than linear solves.
        assert solver.stats["factorizations"] < solver.stats["solves"] / 10

    def test_frozen_lu_is_exact_on_first_matrix(self, rng):
        n = 12
        a = sp.csc_matrix(rng.standard_normal((n, n)) + n * np.eye(n))
        b = rng.standard_normal(n)
        solver = GmresLinearSolver(preconditioner="lu", freeze=True)
        np.testing.assert_allclose(a @ solver(a, b), b, atol=1e-8)
        # Perturbed matrix, same frozen preconditioner: still solves the
        # *current* system accurately.
        a2 = a + sp.csc_matrix(0.01 * np.diag(rng.standard_normal(n)))
        np.testing.assert_allclose(a2 @ solver(a2, b), b, atol=1e-8)
        assert solver.stats["factorizations"] == 1


class TestFailureContext:
    @staticmethod
    def _blowup_dae():
        """f goes NaN once x exceeds 0.5 — Newton cannot converge."""
        return FunctionDAE(
            1,
            q=lambda x: x.copy(),
            f=lambda x: np.sqrt(0.5 - x),
            b=lambda t: np.array([10.0]),
            dq_dx=lambda x: np.eye(1),
            df_dx=lambda x: np.array([[-0.5 / np.sqrt(0.5 - x[0])]]),
        )

    @pytest.mark.filterwarnings("ignore:invalid value encountered")
    def test_fixed_step_underflow_reports_context(self):
        dae = self._blowup_dae()
        with pytest.raises(SimulationError) as excinfo:
            simulate_transient(
                dae, [0.4], 0.0, 1.0,
                TransientOptions(integrator="be", dt=0.25, dt_min=1e-3),
            )
        message = str(excinfo.value)
        assert "step" in message and "t=" in message
        assert "residual norm" in message

    @pytest.mark.filterwarnings("ignore:invalid value encountered")
    def test_divergence_not_silently_swallowed_with_default_newton(self):
        # The default NewtonOptions(raise_on_failure=False) must still end
        # in a loud SimulationError, never a silently wrong trajectory.
        dae = self._blowup_dae()
        opts = TransientOptions(integrator="be", dt=0.25, dt_min=1e-3)
        assert opts.newton.raise_on_failure is False
        with pytest.raises(SimulationError):
            simulate_transient(dae, [0.4], 0.0, 1.0, opts)

    def test_forcing_grid_matches_per_step_eval(self):
        # The precomputed b-grid fast path must agree with per-step forcing
        # evaluation (exercised by disabling it via a huge-step fallback).
        dae = MemsVcoDae(VcoParams.vacuum())
        x0 = [1.0, 0.0, 0.0, 0.0]
        grid_run = simulate_transient(
            dae, x0, 0.0, 5 * T_NOMINAL,
            TransientOptions(integrator="trap", dt=T_NOMINAL / 100),
        )
        from repro.transient import engine as engine_module

        old = engine_module._MAX_FORCING_GRID
        engine_module._MAX_FORCING_GRID = 0  # force the per-step path
        try:
            scalar_run = simulate_transient(
                dae, x0, 0.0, 5 * T_NOMINAL,
                TransientOptions(integrator="trap", dt=T_NOMINAL / 100),
            )
        finally:
            engine_module._MAX_FORCING_GRID = old
        assert _column_close(grid_run.x, scalar_run.x, 1e-6).all()
