"""Tests for post-hoc event extraction (repro/transient/events.py)."""

import numpy as np
import pytest

from repro.transient import rising_level_crossings, zero_crossings


class TestZeroCrossings:
    def test_linear_interpolation_refines_crossing(self):
        # Samples straddle the true crossing at t = 1/3: the event time
        # must be refined by interpolation, not snapped to a sample.
        t = np.array([0.0, 1.0])
        y = np.array([-1.0, 2.0])
        crossings = zero_crossings(t, y, direction=+1)
        np.testing.assert_allclose(crossings, [1.0 / 3.0])

    def test_refinement_accuracy_on_sine(self):
        # A coarsely sampled sine: interpolated crossings land within
        # O(dt^2) of the analytic zeros, far better than the sample
        # spacing itself.  (Phase offset keeps the zeros strictly between
        # samples so every event exercises the refinement.)
        t = np.linspace(0.0, 2.0, 41)  # dt = 0.05
        shift = 0.1 / (2 * np.pi)
        y = np.sin(2 * np.pi * (t + shift))
        rising = zero_crossings(t, y, direction=+1)
        np.testing.assert_allclose(rising, [1.0 - shift, 2.0 - shift],
                                   atol=2e-3)
        falling = zero_crossings(t, y, direction=-1)
        np.testing.assert_allclose(falling, [0.5 - shift, 1.5 - shift],
                                   atol=2e-3)

    def test_direction_filtering(self):
        t = np.linspace(0.0, 1.0, 201)
        y = np.cos(2 * np.pi * t)
        both = zero_crossings(t, y, direction=0)
        rising = zero_crossings(t, y, direction=+1)
        falling = zero_crossings(t, y, direction=-1)
        assert rising.size == 1 and falling.size == 1 and both.size == 2
        np.testing.assert_allclose(np.sort(both),
                                   np.sort(np.r_[rising, falling]))

    def test_exact_zero_at_sample_reported_once(self):
        t = np.array([0.0, 1.0, 2.0, 3.0])
        y = np.array([-1.0, 0.0, 1.0, 2.0])
        crossings = zero_crossings(t, y, direction=+1)
        np.testing.assert_allclose(crossings, [1.0])

    def test_simultaneous_events_on_different_signals(self):
        # Two variables crossing zero inside the same step must each
        # report the same refined event time (the engine stores one shared
        # grid, so simultaneity is exact when the interpolants agree).
        t = np.array([0.0, 1.0, 2.0])
        y1 = np.array([-1.0, -0.5, 0.5])
        y2 = np.array([-2.0, -1.0, 1.0])
        c1 = zero_crossings(t, y1, direction=+1)
        c2 = zero_crossings(t, y2, direction=+1)
        np.testing.assert_allclose(c1, [1.5])
        np.testing.assert_allclose(c2, [1.5])

    def test_multiple_crossings_in_adjacent_intervals(self):
        # A fast oscillation crossing every interval: all crossings are
        # found, ordered, and none merged.
        t = np.arange(6.0)
        y = np.array([1.0, -1.0, 1.0, -1.0, 1.0, -1.0])
        crossings = zero_crossings(t, y, direction=0)
        np.testing.assert_allclose(crossings, [0.5, 1.5, 2.5, 3.5, 4.5])

    def test_no_crossing_and_short_input(self):
        assert zero_crossings([0.0, 1.0], [1.0, 2.0]).size == 0
        assert zero_crossings([0.0], [1.0]).size == 0
        assert zero_crossings([], []).size == 0

    def test_touching_zero_reported_once(self):
        # y touches zero at a sample and returns upward: the documented
        # semantics report an exact sample zero exactly once (on the
        # departing interval), never twice.
        t = np.array([0.0, 1.0, 2.0])
        y = np.array([1.0, 0.0, 1.0])
        crossings = zero_crossings(t, y, direction=+1)
        np.testing.assert_allclose(crossings, [1.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            zero_crossings([0.0, 1.0], [1.0, 2.0, 3.0])


class TestRisingLevelCrossings:
    def test_level_shift(self):
        t = np.linspace(0.0, 1.0, 101)
        y = np.sin(2 * np.pi * t)
        crossings = rising_level_crossings(t, y, level=0.5)
        # sin rises through 0.5 once per period, at t = asin(0.5)/(2 pi).
        np.testing.assert_allclose(
            crossings, [np.arcsin(0.5) / (2 * np.pi)], atol=1e-3
        )

    def test_matches_zero_crossings_of_shifted_signal(self):
        t = np.linspace(0.0, 3.0, 61)
        y = np.cos(3.0 * t)
        np.testing.assert_allclose(
            rising_level_crossings(t, y, level=0.25),
            zero_crossings(t, y - 0.25, direction=+1),
        )
