"""Tests for the simulation service (:mod:`repro.service`).

Inline (``workers=0``) jobs cover the lifecycle, the warm-start cache
(exact replay and family seeding) and streaming; the worker-pool tests
shard a 32-member ensemble into 4 scenario blocks across spawn processes
and check the merged trajectory against the in-process lock-step engine.

The pool tests live at module level (picklable requests reference this
module by name), so they also guard against accidental closure capture
in the request vocabulary.
"""

import queue as stdlib_queue
import time

import numpy as np
import pytest

from repro import api
from repro.circuits.devices import Capacitor, CurrentSource, Resistor
from repro.circuits.netlist import Circuit
from repro.dae import VanDerPolDae
from repro.dae.ensemble import EnsembleDAE
from repro.service import (
    Job,
    JobQueue,
    JobState,
    SimulationService,
    WarmStartCache,
)
from repro.transient import TransientOptions


def _envelope_request(t2_stop=20.0, num_steps=40):
    """A cheap van der Pol envelope whose §4.1 init dominates the cost."""
    return api.EnvelopeRequest(
        dae=VanDerPolDae(mu=0.2), t2_start=0.0, t2_stop=t2_stop,
        num_steps=num_steps, unforced_dae=VanDerPolDae(mu=0.2),
        num_t1=25, period_guess=6.28,
    )


def _rc_member(resistance):
    circuit = Circuit(f"rc-{resistance:g}")
    circuit.add(Resistor("R1", "n1", "0", resistance=resistance))
    circuit.add(Capacitor("C1", "n1", "0", capacitance=1e-9))
    circuit.add(CurrentSource("I1", "0", "n1", waveform=1e-3))
    return circuit.to_dae()


def _ensemble_request(batch=8, kernel="auto"):
    members = [_rc_member(r) for r in np.linspace(0.5e3, 2e3, batch)]
    ensemble = EnsembleDAE.from_members(members)
    return api.EnsembleRequest(
        dae=ensemble, x0=np.zeros(ensemble.n), t_start=0.0, t_stop=1e-6,
        options=TransientOptions(dt=1e-8, kernel=kernel),
    )


def _transient_request(t_stop=2.0):
    return api.TransientRequest(
        dae=VanDerPolDae(mu=0.2), x0=np.array([2.0, 0.0]),
        t_start=0.0, t_stop=t_stop,
        options=TransientOptions(integrator="trap", dt=0.02,
                                 checkpoint_every=0),
    )


class TestJobLifecycle:
    def test_inline_job_reaches_done(self):
        with SimulationService(workers=0) as service:
            job = service.submit(_transient_request())
            assert job.state == JobState.DONE
            status = service.status(job.job_id)
            assert status["state"] == "done"
            assert status["kind"] == "transient"
            assert service.result(job.job_id) is job.result

    def test_failed_job_raises_on_result(self):
        request = api.TransientRequest(
            dae=VanDerPolDae(mu=0.2), x0=None, t_start=0.0, t_stop=1.0,
            options=TransientOptions(dt=0.02),
        )
        with SimulationService(workers=0) as service:
            job = service.submit(request)
            assert job.state == JobState.FAILED
            with pytest.raises(Exception):
                service.result(job.job_id)

    def test_cancel_before_run_wins(self):
        job = Job("job-x", _transient_request())
        assert job.cancel() is True
        assert job.state == JobState.CANCELLED
        with pytest.raises(RuntimeError, match="cancelled"):
            job.outcome()

    def test_queue_rejects_duplicates_and_unknown_ids(self):
        registry = JobQueue()
        registry.add(Job("job-0", None))
        with pytest.raises(ValueError, match="duplicate"):
            registry.add(Job("job-0", None))
        with pytest.raises(KeyError):
            registry.get("job-99")
        assert "job-0" in registry and len(registry) == 1

    def test_result_timeout(self):
        registry = JobQueue()
        registry.add(Job("job-0", None))  # never finishes
        with pytest.raises(TimeoutError):
            registry.result("job-0", timeout=0.05)

    def test_closed_service_rejects_submissions(self):
        service = SimulationService(workers=0)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(_transient_request())


class TestWarmStartCache:
    def test_exact_resubmission_replays_bit_identical(self):
        with SimulationService(workers=0) as service:
            t0 = time.perf_counter()
            first = service.submit(_envelope_request())
            cold = time.perf_counter() - t0
            assert not first.cache_hit

            t0 = time.perf_counter()
            second = service.submit(_envelope_request())
            replay = time.perf_counter() - t0
            assert second.cache_hit
            assert second.state == JobState.DONE

            a, b = first.result, second.result
            assert np.array_equal(a.samples, b.samples)
            assert np.array_equal(a.omega, b.omega)
            assert np.array_equal(a.t2, b.t2)
            # Replay does no solver work; the issue's acceptance bar is
            # a 5x speedup, typical is two orders of magnitude.
            assert replay < cold / 5.0

    def test_family_seed_warm_starts_new_window(self):
        with SimulationService(workers=0) as service:
            cold_job = service.submit(_envelope_request(t2_stop=20.0))
            warm_job = service.submit(
                _envelope_request(t2_stop=30.0, num_steps=60)
            )
            assert not warm_job.cache_hit  # different window, new work
            assert warm_job.warm_hit  # ...but seeded from the family
            cold, warm = cold_job.result, warm_job.result
            # Seeded from the settled orbit: same limit cycle, and the
            # warm run skipped the DC -> settle -> HB prefix entirely.
            np.testing.assert_allclose(
                warm.omega[0], cold.omega[0], rtol=1e-9
            )
            stats = service.cache_stats()
            assert stats["seed_hits"] >= 1

    def test_cache_eviction_is_lru(self):
        cache = WarmStartCache(max_results=2)
        result = api.run(_transient_request(t_stop=0.1))
        assert cache.store_result("k1", result)
        assert cache.store_result("k2", result)
        assert cache.load_result("k1") is not None  # refresh k1
        assert cache.store_result("k3", result)  # evicts k2
        assert cache.load_result("k2") is None
        assert cache.load_result("k1") is not None

    def test_uncacheable_request_still_runs(self):
        request = api.SweepRequest(
            dae_factory=lambda v: VanDerPolDae(mu=float(v)),
            values=np.array([0.2]), period_guess=6.28, method="continuation",
        )
        assert request.cache_key() is None
        with SimulationService(workers=0) as service:
            job = service.submit(request)
            assert job.state == JobState.DONE
            assert job.cache_key is None
            resubmit = service.submit(request)
            assert not resubmit.cache_hit  # no key, no replay


class TestStreaming:
    def test_inline_stream_prefixes_match_final(self):
        with SimulationService(workers=0, stream_every=10) as service:
            job = service.submit(_transient_request(), stream=True)
            final = service.result(job.job_id)
            partials = list(service.stream(job.job_id, poll=0.01))
        assert partials
        for step, _t, partial in partials:
            k = partial.t.size
            assert np.array_equal(partial.t, final.t[:k])
            assert np.array_equal(partial.x, final.x[:k])

    def test_stream_requires_opt_in(self):
        with SimulationService(workers=0) as service:
            job = service.submit(_transient_request())
            with pytest.raises(ValueError, match="stream=True"):
                list(service.stream(job.job_id))

    def test_stream_sink_rides_checkpoint_cadence(self):
        from repro.service.streaming import StreamSink, decode_stream_item

        sink_queue = stdlib_queue.Queue()
        request = _transient_request()
        from repro.service.workers import _with_streaming

        streamed = _with_streaming(
            request, StreamSink(sink_queue, ("x", "v")), 25
        )
        assert streamed.options.checkpoint_every == 25
        api.run(streamed)
        steps = [decode_stream_item(sink_queue.get_nowait())[0]
                 for _ in range(sink_queue.qsize())]
        assert steps == sorted(steps) and len(steps) >= 3


class TestWorkerPool:
    def test_sharded_ensemble_matches_in_process(self):
        # kernel="python" shards at 8 scenarios per block; batch=32 so
        # the service spreads 4 lock-step blocks across its pool.
        request = _ensemble_request(batch=32, kernel="python")
        shards = request.shards()
        assert shards is not None and len(shards) == 4
        assert all(s.dae.batch_size == 8 for s in shards)
        reference = api.run(request)
        with SimulationService(workers=4) as service:
            job = service.submit(request)
            merged = service.result(job.job_id, timeout=300)
            assert job.shard_count == 4
        assert merged.x.shape == reference.x.shape
        # Scenario blocks march the same fixed-step grid; trajectories
        # agree within solver tolerance.
        np.testing.assert_allclose(
            merged.x, reference.x, rtol=1e-8, atol=1e-12
        )
        assert len(merged.stats["solver_per_scenario"]) == 32

    def test_small_batches_are_not_fragmented(self):
        # The shard size is derived from the resolved backend; a batch
        # at or below one block runs as a single job instead of being
        # split into per-member slivers.
        assert _ensemble_request(batch=8).shards() is None
        assert _ensemble_request(batch=8, kernel="python").shards() is None

    def test_pooled_single_job_round_trips(self):
        with SimulationService(workers=2) as service:
            job = service.submit(_transient_request(t_stop=1.0))
            pooled = service.result(job.job_id, timeout=300)
        direct = api.run(_transient_request(t_stop=1.0))
        assert np.array_equal(pooled.t, direct.t)
        assert np.array_equal(pooled.x, direct.x)

    def test_unpicklable_request_falls_back_inline(self):
        request = api.SweepRequest(
            dae_factory=lambda v: VanDerPolDae(mu=float(v)),
            values=np.array([0.2]), period_guess=6.28, method="continuation",
        )
        with SimulationService(workers=2) as service:
            assert not service._picklable(request)
            job = service.submit(request)
            assert job.state == JobState.DONE  # ran inline, synchronously
            assert service._pool is None  # pool never spun up
