"""Tests for the Newton kernel."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ConvergenceError, SingularJacobianError
from repro.linalg import NewtonOptions, newton_solve


def quadratic_residual(x):
    return np.array([x[0] ** 2 - 4.0, x[1] - 1.0])


def quadratic_jacobian(x):
    return np.array([[2.0 * x[0], 0.0], [0.0, 1.0]])


class TestNewtonBasics:
    def test_converges_to_root(self):
        result = newton_solve(quadratic_residual, quadratic_jacobian, [3.0, 0.0])
        assert result.converged
        np.testing.assert_allclose(result.x, [2.0, 1.0], atol=1e-8)

    def test_quadratic_convergence_rate(self):
        result = newton_solve(quadratic_residual, quadratic_jacobian, [3.0, 0.0])
        history = result.residual_history
        # Quadratic convergence: few iterations from a good start.
        assert result.iterations <= 8
        assert history[-1] < 1e-9

    def test_accepts_exact_initial_guess(self):
        result = newton_solve(quadratic_residual, quadratic_jacobian, [2.0, 1.0])
        assert result.converged
        assert result.iterations == 0

    def test_linear_system_single_step(self):
        a = np.array([[2.0, 1.0], [1.0, 3.0]])
        rhs = np.array([1.0, 2.0])
        result = newton_solve(lambda x: a @ x - rhs, lambda x: a, [0.0, 0.0])
        np.testing.assert_allclose(result.x, np.linalg.solve(a, rhs), atol=1e-10)
        assert result.iterations <= 2

    def test_sparse_jacobian_supported(self):
        result = newton_solve(
            quadratic_residual,
            lambda x: sp.csr_matrix(quadratic_jacobian(x)),
            [3.0, 0.0],
        )
        assert result.converged

    def test_residual_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length"):
            newton_solve(lambda x: np.zeros(3), lambda x: np.eye(3), [1.0, 2.0])


class TestNewtonDamping:
    def test_line_search_rescues_overshoot(self):
        # atan has a tiny basin for full Newton; damping fixes it.
        result = newton_solve(
            lambda x: np.array([np.arctan(x[0])]),
            lambda x: np.array([[1.0 / (1.0 + x[0] ** 2)]]),
            [3.0],
        )
        assert result.converged
        np.testing.assert_allclose(result.x, [0.0], atol=1e-8)

    def test_exhausted_line_search_reuses_smallest_trial(self):
        # A residual whose norm never decreases exhausts the line search;
        # the solver must keep the smallest trial it already evaluated
        # instead of spending another evaluation on a further-halved step.
        halvings = 3
        evaluations = []

        def residual(x):
            evaluations.append(float(x[0]))
            return np.array([2.0])  # constant norm: every trial rejected

        options = NewtonOptions(
            max_step_halvings=halvings, max_iterations=1,
            raise_on_failure=False,
        )
        result = newton_solve(residual, lambda x: np.array([[1.0]]), [0.0],
                              options=options)
        assert not result.converged
        # 1 initial evaluation + exactly (halvings + 1) trials, no extra.
        assert len(evaluations) == 1 + halvings + 1
        # dx = -2, so the trials are -2, -1, -0.5, -0.25; the accepted
        # iterate is the smallest step actually evaluated.
        assert evaluations[1:] == [-2.0, -1.0, -0.5, -0.25]
        np.testing.assert_allclose(result.x, [-0.25])

    def test_no_damping_diverges_on_atan(self):
        options = NewtonOptions(
            max_step_halvings=0, max_iterations=8, raise_on_failure=False
        )

        def jacobian(x):
            with np.errstate(over="ignore"):
                return np.array([[1.0 / (1.0 + min(x[0] ** 2, 1e300))]])

        # Without damping the iterates alternate with growing magnitude and
        # either stall (not converged) or blow the Jacobian up (singular).
        try:
            result = newton_solve(
                lambda x: np.array([np.arctan(x[0])]),
                jacobian,
                [3.0],
                options=options,
            )
        except SingularJacobianError:
            return
        assert not result.converged


class TestNewtonFailures:
    @staticmethod
    def _rootless():
        """exp(x) + 1 has no root and a never-singular Jacobian."""
        residual = lambda x: np.array([np.exp(x[0]) + 1.0])  # noqa: E731
        jacobian = lambda x: np.array([[np.exp(x[0])]])  # noqa: E731
        return residual, jacobian

    def test_raises_on_stall_by_default(self):
        residual, jacobian = self._rootless()
        with pytest.raises(ConvergenceError):
            newton_solve(
                residual, jacobian, [0.0],
                options=NewtonOptions(max_iterations=3, rtol=1e-14),
            )

    def test_reports_instead_when_configured(self):
        residual, jacobian = self._rootless()
        options = NewtonOptions(
            max_iterations=3, rtol=1e-14, raise_on_failure=False
        )
        result = newton_solve(residual, jacobian, [0.0], options=options)
        assert not result.converged
        assert result.iterations == 3

    def test_singular_jacobian_raises(self):
        with pytest.raises((SingularJacobianError, ConvergenceError)):
            newton_solve(
                lambda x: np.array([x[0] + 1.0]),
                lambda x: np.array([[0.0]]),
                [1.0],
                options=NewtonOptions(max_iterations=5),
            )

    def test_convergence_error_carries_diagnostics(self):
        residual, jacobian = self._rootless()
        try:
            newton_solve(
                residual, jacobian, [0.0],
                options=NewtonOptions(max_iterations=3, rtol=1e-14),
            )
        except ConvergenceError as exc:
            assert exc.iterations == 3
            assert exc.residual_norm is not None
        else:  # pragma: no cover
            pytest.fail("expected ConvergenceError")


class TestNewtonCustomLinearSolver:
    def test_custom_solver_is_used(self):
        calls = []

        def solver(jac, rhs):
            calls.append(1)
            return np.linalg.solve(np.asarray(jac), rhs)

        result = newton_solve(
            quadratic_residual, quadratic_jacobian, [3.0, 0.0],
            linear_solver=solver,
        )
        assert result.converged
        assert len(calls) >= 1
