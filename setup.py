"""Legacy setup shim.

This environment has no network and no ``wheel`` package, so PEP 660
editable installs fail; ``pip install -e . --no-use-pep517
--no-build-isolation`` falls back to this file and works offline.
"""

from setuptools import setup

setup()
