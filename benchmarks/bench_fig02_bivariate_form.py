"""Figure 2: the bivariate form yhat(t1, t2) (paper eq. 2).

Paper claims: (i) 15x15 = 225 samples represent what took 750 directly —
a saving that grows with rate separation; (ii) the original signal is
recovered *completely* from the bivariate form.  We verify both, measuring
actual reconstruction error through 2-D trigonometric interpolation.
"""


from repro.signals import (
    bivariate_sample_count,
    reconstruction_error_two_tone,
    transient_sample_count,
    two_tone_bivariate,
)
from repro.spectral import collocation_grid
from repro.utils import format_table, write_csv


def generate_fig02():
    """Sample yhat on the paper's 15x15 grid and measure recovery error."""
    grid1 = collocation_grid(15, 0.02)
    grid2 = collocation_grid(15, 1.0)
    surface = two_tone_bivariate(grid1[None, :], grid2[:, None])
    error = reconstruction_error_two_tone(15)
    return grid1, grid2, surface, error


def test_fig02_bivariate_form(benchmark, output_dir):
    grid1, grid2, surface, error = benchmark(generate_fig02)

    assert surface.shape == (15, 15)
    assert error < 1e-9  # complete recovery, as the paper states

    direct = transient_sample_count()
    compact = bivariate_sample_count()
    rows = [
        ["bivariate grid samples (paper: 225)", compact],
        ["direct samples (paper: 750)", direct],
        ["compression factor (paper: 3.3x)", direct / compact],
        ["max reconstruction error of y(t)", error],
        ["compression at 1000x separation",
         transient_sample_count(period1=1e-3) / compact],
    ]
    print()
    print(format_table(["quantity", "value"], rows,
                       title="Fig 2 — bivariate representation of y(t)"))
    write_csv(
        output_dir / "fig02_bivariate_surface.csv",
        ["t1"] + [f"t2_{i}" for i in range(15)],
        [grid1] + [surface[i] for i in range(15)],
    )
