"""Baselines (paper §2): shooting and harmonic balance on the unforced VCO,
and the cost argument for why neither handles the *forced* (FM) case.

Paper: "Neither shooting nor harmonic balance can be applied, however, to
forced oscillators with FM-quasiperiodic responses, as they require an
impractically large number of time-steps or variables."  The bench
(a) cross-validates shooting vs HB vs the WaMPDE's omega on the unforced
oscillator, and (b) tabulates the variable counts a two-tone HB of the
forced VCO would need (Carson's-rule sideband estimate) against the
WaMPDE envelope's unknowns.
"""

import numpy as np

from repro.circuits.library import MemsVcoDae
from repro.steadystate import shooting_autonomous
from repro.utils import WallTimer, format_table, write_csv


def run_baselines(vacuum_ic):
    params, samples, f0_hb = vacuum_ic
    unforced = MemsVcoDae(params, constant_control=True)

    with WallTimer() as shoot_timer:
        shot = shooting_autonomous(
            unforced,
            samples[0],
            1.0 / f0_hb,
            anchor_index=0,
            anchor_value=float(samples[0, 0]),
            steps_per_period=300,
        )
    return params, f0_hb, shot, shoot_timer.elapsed


def test_baseline_steadystate(benchmark, vacuum_ic, output_dir):
    params, f0_hb, shot, shoot_time = benchmark.pedantic(
        run_baselines, args=(vacuum_ic,), rounds=1, iterations=1
    )

    f0_shoot = 1.0 / shot.period
    # Shooting and HB agree on the free-running frequency.
    assert abs(f0_shoot - f0_hb) / f0_hb < 2e-3
    # Autonomous orbit: largest Floquet multiplier magnitude ~ 1.
    multipliers = np.abs(shot.floquet_multipliers())
    assert abs(multipliers.max() - 1.0) < 0.05

    rows = [
        ["harmonic balance f0 [MHz]", f0_hb / 1e6],
        ["shooting f0 [MHz]", f0_shoot / 1e6],
        ["relative disagreement", abs(f0_shoot - f0_hb) / f0_hb],
        ["largest |Floquet multiplier| (=1 expected)", multipliers.max()],
        ["shooting wall time [s]", shoot_time],
    ]
    print()
    print(format_table(
        ["quantity", "value"], rows,
        title="Baselines on the unforced VCO: shooting vs harmonic balance",
    ))

    # Cost argument for the *forced* case (paper §2/§3): a two-tone HB
    # needs sidebands covering the FM deviation around every carrier
    # harmonic (Carson's rule), whereas the WaMPDE needs none of them.
    f2 = 1.0 / params.control_period
    delta_f = 0.7e6  # frequency deviation observed in Fig 7
    sidebands = int(np.ceil(2 * (delta_f / f2 + 1)))
    carrier_harmonics = 12
    n_vars = 4
    hb_unknowns = n_vars * (2 * carrier_harmonics + 1) * (sidebands + 1)
    wampde_unknowns = n_vars * 25 + 1
    cost_rows = [
        ["FM deviation / forcing rate", delta_f / f2],
        ["sidebands per carrier harmonic (Carson)", sidebands],
        ["two-tone HB unknowns (forced VCO)", hb_unknowns],
        ["WaMPDE unknowns per t2 step", wampde_unknowns],
        ["ratio", hb_unknowns / wampde_unknowns],
    ]
    print(format_table(
        ["quantity", "value"], cost_rows,
        title="Why forced-FM steady state defeats plain HB (paper §2)",
    ))
    write_csv(output_dir / "baseline_steadystate.csv",
              ["f0_hb", "f0_shooting"], [[f0_hb], [f0_shoot]])
