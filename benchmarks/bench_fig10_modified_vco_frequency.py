"""Figure 10: modified VCO (air damping, 1 ms control period).

Paper claims: "note the settling behaviour and the smaller change in
frequency, both due to the slow dynamics of the air-filled varactor"
(figure axis: 0.75-1.25 MHz over 3 ms).
"""

import numpy as np

from repro.circuits.library import MemsVcoDae
from repro.utils import ascii_plot, format_table, write_csv
from repro.wampde import solve_wampde_envelope


def run_fig10(params, samples, f0):
    forced = MemsVcoDae(params)
    return solve_wampde_envelope(forced, samples, f0, 0.0, 3e-3, 1200)


def test_fig10_modified_vco_frequency(benchmark, air_ic, output_dir):
    params, samples, f0 = air_ic
    env = benchmark.pedantic(
        run_fig10, args=(params, samples, f0), rounds=1, iterations=1
    )

    swing = env.omega.max() / env.omega.min()
    assert swing < 2.2  # much smaller than the vacuum VCO's ~3x

    # Settling: the first-period response differs from the settled one.
    period = params.control_period
    early = env.local_frequency(0.4 * period)
    settled = env.local_frequency(0.4 * period + 2 * period)
    settling_shift = abs(early - settled) / settled
    assert settling_shift > 0.02

    idx = np.linspace(0, env.t2.size - 1, 13).astype(int)
    rows = [[env.t2[i] * 1e3, env.omega[i] / 1e6] for i in idx]
    print()
    print(format_table(
        ["t2 [ms]", "local frequency [MHz]"], rows,
        title="Fig 10 — modified VCO frequency (paper: 0.75-1.25 MHz, "
              "settling)",
    ))
    summary = [
        ["initial frequency [MHz] (paper: 0.75)", env.omega[0] / 1e6],
        ["min frequency [MHz]", env.omega.min() / 1e6],
        ["max frequency [MHz]", env.omega.max() / 1e6],
        ["swing factor (vacuum VCO: ~3)", swing],
        ["settling shift at 0.4 ms vs +2 periods", settling_shift],
        ["mechanical relaxation c/k [ms]",
         params.damping / params.stiffness * 1e3],
    ]
    print(format_table(["quantity", "value"], summary))
    print(ascii_plot(env.t2 * 1e3, env.omega / 1e6,
                     title="local frequency [MHz] vs t2 [ms]"))
    write_csv(output_dir / "fig10_modified_vco_frequency.csv",
              ["t2_s", "frequency_hz"], [env.t2, env.omega])
