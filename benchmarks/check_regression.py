#!/usr/bin/env python
"""Perf-regression gate for the speedup bench.

Compares the freshly written ``BENCH_speedup.json`` against the committed
baseline ``BENCH_baseline.json`` and fails (exit code 1) when the perf
trajectory regresses:

* any method's ``wall_time_s`` exceeds its baseline by more than
  ``--max-slowdown`` (default 1.25, i.e. a >25% slowdown);
* any method's ``phase_error_cycles`` worsens beyond tolerance
  (``baseline + max(--phase-atol, --phase-rtol * baseline)``);
* a baseline method is missing from the current record.

Methods present only in the current record are reported but pass — they
start being ratcheted at the next re-baseline.  See
``benchmarks/README.md`` for the intentional re-baselining workflow.

Usage::

    python benchmarks/check_regression.py \
        [--baseline BENCH_baseline.json] [--current BENCH_speedup.json] \
        [--max-slowdown 1.25] [--phase-atol 0.02] [--phase-rtol 0.10]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_methods(path):
    """Map ``name -> method record`` from a BENCH json file."""
    payload = json.loads(Path(path).read_text())
    methods = payload.get("methods")
    if not isinstance(methods, list):
        raise ValueError(f"{path}: no 'methods' list")
    return {entry["name"]: entry for entry in methods}


def compare(baseline, current, max_slowdown, phase_atol, phase_rtol):
    """Return ``(failures, report_lines)`` for the two method maps."""
    failures = []
    lines = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: present in baseline but missing from "
                            f"current record")
            continue
        base_mode = base.get("kernel_mode")
        cur_mode = cur.get("kernel_mode")
        if base_mode is not None and cur_mode != base_mode:
            # A compiled entry timed on a host without the baseline's
            # backend (e.g. no numba and no C toolchain) is a capability
            # difference, not a perf regression — report, don't gate.
            lines.append(
                f"{name}: kernel mode {cur_mode!r} != baseline "
                f"{base_mode!r}; wall gate skipped"
            )
            continue
        base_wall = float(base["wall_time_s"])
        cur_wall = float(cur["wall_time_s"])
        ratio = cur_wall / base_wall if base_wall > 0 else float("inf")
        wall_ok = ratio <= max_slowdown
        lines.append(
            f"{name}: wall {cur_wall:.3f}s vs baseline {base_wall:.3f}s "
            f"({ratio:.2f}x) [{'ok' if wall_ok else 'FAIL'}]"
        )
        if not wall_ok:
            failures.append(
                f"{name}: wall_time_s regressed {ratio:.2f}x "
                f"({base_wall:.3f}s -> {cur_wall:.3f}s, "
                f"limit {max_slowdown:.2f}x)"
            )
        base_phase = base.get("phase_error_cycles")
        cur_phase = cur.get("phase_error_cycles")
        if base_phase is None or cur_phase is None:
            continue
        base_phase = float(base_phase)
        cur_phase = float(cur_phase)
        limit = base_phase + max(phase_atol, phase_rtol * abs(base_phase))
        phase_ok = cur_phase <= limit
        lines.append(
            f"{name}: phase error {cur_phase:.5f} cycles vs baseline "
            f"{base_phase:.5f} (limit {limit:.5f}) "
            f"[{'ok' if phase_ok else 'FAIL'}]"
        )
        if not phase_ok:
            failures.append(
                f"{name}: phase_error_cycles worsened "
                f"({base_phase:.5f} -> {cur_phase:.5f}, limit {limit:.5f})"
            )
    for name in sorted(set(current) - set(baseline)):
        lines.append(f"{name}: new method (not in baseline; not ratcheted)")
    return failures, lines


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline",
                        default=str(REPO_ROOT / "BENCH_baseline.json"))
    parser.add_argument("--current",
                        default=str(REPO_ROOT / "BENCH_speedup.json"))
    parser.add_argument("--max-slowdown", type=float, default=1.25,
                        help="allowed wall_time_s ratio vs baseline")
    parser.add_argument("--phase-atol", type=float, default=0.02,
                        help="allowed absolute phase-error worsening [cycles]")
    parser.add_argument("--phase-rtol", type=float, default=0.10,
                        help="allowed relative phase-error worsening")
    args = parser.parse_args(argv)

    try:
        baseline = load_methods(args.baseline)
        current = load_methods(args.current)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    failures, lines = compare(
        baseline, current, args.max_slowdown, args.phase_atol,
        args.phase_rtol,
    )
    print(f"perf gate: {args.current} vs baseline {args.baseline}")
    for line in lines:
        print(f"  {line}")
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) vs baseline:")
        for failure in failures:
            print(f"  - {failure}")
        print("(intentional? re-baseline per benchmarks/README.md)")
        return 1
    print("\nOK: no perf regressions vs baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
