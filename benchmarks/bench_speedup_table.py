"""§5 headline: "WaMPDE-based simulation results in speedups of two orders
of magnitude over transient simulation."

The comparison is made the way the paper makes it: the WaMPDE versus the
transient rate needed for *comparable phase accuracy* (1000 points per
nominal cycle, per Fig 12).  All runs come from the shared ``fig12_data``
fixture; this bench re-times the WaMPDE envelope as its payload, prints the
wall-clock table, and emits ``BENCH_speedup.json`` — the machine-readable
perf trajectory (wall times + phase errors) tracked across PRs.
"""

import json
from pathlib import Path

from repro.circuits.library import MemsVcoDae
from repro.utils import WallTimer, format_table, write_csv
from repro.wampde import solve_wampde_envelope

#: Repo-root copy of the perf record, committed to track the trajectory.
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_speedup.json"


def test_speedup_table(benchmark, fig12_data, air_ic, output_dir):
    params, samples, f0 = air_ic
    horizon = fig12_data["horizon"]
    forced = MemsVcoDae(params)

    from repro.wampde import WampdeEnvelopeOptions

    with WallTimer() as retimer:
        benchmark.pedantic(
            solve_wampde_envelope,
            args=(forced, samples, f0, 0.0, horizon,
                  fig12_data["wampde"]["steps"]),
            kwargs={"options": WampdeEnvelopeOptions(integrator="trap")},
            rounds=1, iterations=1,
        )

    wampde_time = fig12_data["wampde"]["time"]
    reference_time = fig12_data["reference_time"]
    speedup = reference_time / wampde_time
    # The paper claims two orders of magnitude; allow a generous band for
    # host variation while requiring the order of magnitude to hold.
    assert speedup > 20.0

    rows = [
        ["ODE: 50 pts/cycle (inaccurate: "
         f"{fig12_data['transient'][50]['phase_error_cycles']:.3f} cyc err)",
         fig12_data["transient"][50]["steps"],
         fig12_data["transient"][50]["time"], "-"],
        ["ODE: 100 pts/cycle (inaccurate: "
         f"{fig12_data['transient'][100]['phase_error_cycles']:.3f} cyc err)",
         fig12_data["transient"][100]["steps"],
         fig12_data["transient"][100]["time"], "-"],
        ["ODE: 1000 pts/cycle (WaMPDE-comparable accuracy)",
         fig12_data["reference_steps"], reference_time, 1.0],
        ["WaMPDE envelope",
         fig12_data["wampde"]["steps"], wampde_time, speedup],
    ]
    print()
    print(format_table(
        ["method", "steps", "wall time [s]", "speedup vs accurate ODE"],
        rows,
        title=f"Speedup over {horizon*1e3:.2f} ms of the modified VCO "
              "(paper: two orders of magnitude)",
    ))
    write_csv(
        output_dir / "speedup_table.csv",
        ["steps", "wall_time_s"],
        [[fig12_data["transient"][50]["steps"],
          fig12_data["transient"][100]["steps"],
          fig12_data["reference_steps"],
          fig12_data["wampde"]["steps"]],
         [fig12_data["transient"][50]["time"],
          fig12_data["transient"][100]["time"],
          reference_time, wampde_time]],
    )

    payload = {
        "schema_version": 1,
        "bench": "speedup_table",
        "horizon_s": horizon,
        "methods": [
            {
                "name": "transient_50_pts_per_cycle",
                "steps": int(fig12_data["transient"][50]["steps"]),
                "wall_time_s": fig12_data["transient"][50]["time"],
                "phase_error_cycles":
                    fig12_data["transient"][50]["phase_error_cycles"],
            },
            {
                "name": "transient_100_pts_per_cycle",
                "steps": int(fig12_data["transient"][100]["steps"]),
                "wall_time_s": fig12_data["transient"][100]["time"],
                "phase_error_cycles":
                    fig12_data["transient"][100]["phase_error_cycles"],
            },
            {
                "name": "transient_1000_pts_per_cycle_reference",
                "steps": int(fig12_data["reference_steps"]),
                "wall_time_s": reference_time,
                "phase_error_cycles": 0.0,
            },
            {
                "name": "wampde_envelope",
                "steps": int(fig12_data["wampde"]["steps"]),
                "wall_time_s": wampde_time,
                "wall_time_retimed_s": retimer.elapsed,
                "phase_error_cycles":
                    fig12_data["wampde"]["phase_error_cycles"],
            },
        ],
        "speedup_vs_accurate_ode": speedup,
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    (output_dir / "BENCH_speedup.json").write_text(text)
    BENCH_JSON.write_text(text)
