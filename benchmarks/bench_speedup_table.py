"""§5 headline: "WaMPDE-based simulation results in speedups of two orders
of magnitude over transient simulation."

The comparison is made the way the paper makes it: the WaMPDE versus the
transient rate needed for *comparable phase accuracy* (1000 points per
nominal cycle, per Fig 12).  All runs come from the shared ``fig12_data``
fixture; this bench re-times the WaMPDE envelope as its payload, prints the
wall-clock table, and emits ``BENCH_speedup.json`` — the machine-readable
perf trajectory (wall times + phase errors) tracked across PRs.
"""

import json
from pathlib import Path

import numpy as np

from repro.circuits.library import MemsVcoDae
from repro.utils import WallTimer, format_table, write_csv
from repro.wampde import solve_wampde_envelope

#: Repo-root copy of the perf record, committed to track the trajectory.
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_speedup.json"


def _bench_ported_solvers():
    """Time the SolverCore-ported steady-state workloads.

    Two representative call sites of the shared solver core join the perf
    ratchet here: forced harmonic balance and the bi-periodic MPDE solve,
    both on the RC-diode mixer (the library's standard nonlinear
    non-autonomous testbench).  Returns BENCH method entries.
    """
    from repro.circuits.library import rc_diode_mixer_circuit
    from repro.constants import TWO_PI
    from repro.mpde import additive_two_tone_forcing, solve_mpde_quasiperiodic
    from repro.steadystate import dc_operating_point, harmonic_balance_forced

    entries = []

    rectifier = rc_diode_mixer_circuit(
        lo_amplitude=0.0, rf_amplitude=0.3, rf_frequency=1e4
    ).to_dae()
    x_dc = dc_operating_point(rectifier)
    num_samples = 601
    with WallTimer() as timer:
        hb = harmonic_balance_forced(
            rectifier, period=1e-4, num_samples=num_samples,
            initial=np.tile(x_dc, (num_samples, 1)),
        )
    entries.append({
        "name": "harmonic_balance_forced",
        "steps": int(hb.newton_iterations),
        "wall_time_s": timer.elapsed,
        "wall_time_retimed_s": timer.elapsed,
    })

    mixer = rc_diode_mixer_circuit().to_dae()
    n = mixer.n
    f_rf, f_lo = 1e5, 1e3

    def fast(t1):
        b = np.zeros(n)
        b[-1] = 0.6 + 0.05 * np.sin(TWO_PI * f_rf * t1)
        return b

    def slow(t2):
        b = np.zeros(n)
        b[-1] = 0.4 * np.sin(TWO_PI * f_lo * t2)
        return b

    forcing = additive_two_tone_forcing(fast, slow, 1 / f_rf, 1 / f_lo, n)
    x_dc = dc_operating_point(mixer)
    with WallTimer() as timer:
        qp = solve_mpde_quasiperiodic(
            mixer, forcing, num_t1=31, num_t2=31, initial=x_dc
        )
    entries.append({
        "name": "solve_mpde_quasiperiodic",
        "steps": int(qp.newton_iterations),
        "wall_time_s": timer.elapsed,
        "wall_time_retimed_s": timer.elapsed,
    })
    return entries


def _bench_ensemble_sweep(batch=8):
    """Batched control-voltage sweep versus the serial loop (ratcheted).

    The ensemble tentpole's win condition: ``batch`` scenarios of the
    vacuum VCO advanced in lock-step by
    :func:`repro.transient.ensemble.simulate_transient_ensemble` must run
    in far less than ``batch`` times the single-run wall time.  The entry
    ratchets the batched wall time; the >= 2x speedup over the serial
    loop is asserted outright so a dispatch-overhead regression fails the
    bench even before the baseline comparison.
    """
    from dataclasses import replace

    from repro.circuits.library import T_NOMINAL, VcoParams
    from repro.dae import ensemble_from_factory
    from repro.transient import (
        TransientOptions,
        simulate_transient,
        simulate_transient_ensemble,
    )

    base = VcoParams.vacuum()
    control_voltages = np.linspace(0.8, 2.4, batch)

    def factory(vc):
        return MemsVcoDae(
            replace(base, control_offset=vc), constant_control=True
        )

    def stacked_factory(values):
        return MemsVcoDae(
            replace(base, control_offset=np.asarray(values)),
            constant_control=True,
        )

    ensemble = ensemble_from_factory(
        factory, control_voltages, stacked_factory
    )
    x0 = np.tile([1.0, 0.0, 0.0, 0.0], (batch, 1))
    options = TransientOptions(integrator="trap", dt=T_NOMINAL / 100)
    horizon = 40 * T_NOMINAL

    with WallTimer() as batched_timer:
        batched = simulate_transient_ensemble(
            ensemble, x0, 0.0, horizon, options
        )
    # The serial loop pins kernel="python": this entry ratchets what
    # NumPy batching buys over per-scenario *python* dispatch — the
    # compiled sweep (which beats both on kernel-supported DAEs) is
    # ratcheted separately by transient_reference_compiled.
    serial_options = TransientOptions(
        integrator="trap", dt=T_NOMINAL / 100, kernel="python"
    )
    with WallTimer() as serial_timer:
        serial_finals = []
        for index, vc in enumerate(control_voltages):
            run = simulate_transient(
                factory(vc), x0[index], 0.0, horizon, serial_options
            )
            serial_finals.append(run.x[-1])

    # Lock-step results must match the independent runs within solver
    # tolerance — the speedup is worthless otherwise.
    finals = batched.x[-1]
    scale = np.maximum(np.abs(serial_finals), 1e-12)
    mismatch = float(np.max(np.abs(finals - serial_finals) / scale))
    assert mismatch < 1e-4, f"ensemble diverged from serial runs: {mismatch}"

    speedup = serial_timer.elapsed / batched_timer.elapsed
    assert speedup >= 2.0, (
        f"batched ensemble only {speedup:.2f}x faster than the serial "
        f"loop at B={batch} (require >= 2x)"
    )
    return {
        "name": "ensemble_sweep",
        "steps": int(batched.stats["steps"]) * batch,
        "wall_time_s": batched_timer.elapsed,
        "wall_time_retimed_s": batched_timer.elapsed,
        "serial_wall_time_s": serial_timer.elapsed,
        "batch_size": batch,
        "speedup_vs_serial_loop": speedup,
    }


def _bench_ensemble_sweep_compiled(batch=8):
    """Compiled batched march versus the NumPy lock-step path (ratcheted).

    The batched-kernel tentpole's win condition: the same control-voltage
    sweep as ``ensemble_sweep``, advanced by the compiled ``sweep_ens``
    march, must beat the python lock-step engine by >= 3x at ``B = 8``
    whenever a compiled backend is available — asserted outright, with
    the compiled wall time joining the ratchet.
    """
    from dataclasses import replace

    from repro.circuits.library import T_NOMINAL, VcoParams
    from repro.dae import ensemble_from_factory
    from repro.transient import TransientOptions, simulate_transient_ensemble

    base = VcoParams.vacuum()
    control_voltages = np.linspace(0.8, 2.4, batch)

    def factory(vc):
        return MemsVcoDae(
            replace(base, control_offset=vc), constant_control=True
        )

    def stacked_factory(values):
        return MemsVcoDae(
            replace(base, control_offset=np.asarray(values)),
            constant_control=True,
        )

    ensemble = ensemble_from_factory(
        factory, control_voltages, stacked_factory
    )
    x0 = np.tile([1.0, 0.0, 0.0, 0.0], (batch, 1))
    horizon = 40 * T_NOMINAL

    def options(kernel):
        return TransientOptions(
            integrator="trap", dt=T_NOMINAL / 100, kernel=kernel
        )

    with WallTimer() as python_timer:
        python_run = simulate_transient_ensemble(
            ensemble, x0, 0.0, horizon, options("python")
        )
    with WallTimer() as compiled_timer:
        compiled_run = simulate_transient_ensemble(
            ensemble, x0, 0.0, horizon, options("auto")
        )

    mode = compiled_run.stats["kernel"]["mode"]
    scale = np.abs(python_run.x).max()
    mismatch = float(np.abs(compiled_run.x - python_run.x).max() / scale)
    assert mismatch < 1e-9, (
        f"compiled ensemble march diverged from the python lock-step "
        f"path: {mismatch}"
    )
    assert (compiled_run.stats["newton_iterations"]
            == python_run.stats["newton_iterations"]), \
        "compiled ensemble march changed the chord iteration count"
    speedup = python_timer.elapsed / compiled_timer.elapsed
    if mode != "python":
        assert speedup >= 3.0, (
            f"compiled ({mode}) ensemble march only {speedup:.2f}x faster "
            f"than the python lock-step path at B={batch} (require >= 3x)"
        )
    return {
        "name": "ensemble_sweep_compiled",
        "steps": int(compiled_run.stats["steps"]) * batch,
        "wall_time_s": compiled_timer.elapsed,
        "wall_time_retimed_s": compiled_timer.elapsed,
        "python_wall_time_s": python_timer.elapsed,
        "batch_size": batch,
        "kernel_mode": mode,
        "speedup_vs_python_lockstep": speedup,
    }


def _bench_ensemble_large_b(batch=256, shard=8):
    """Single large-B lock-step march versus shard-sized passes (ratcheted).

    The array-backend tentpole's win condition: a thousand-scenario-class
    ensemble (``B = 256``) advanced as ONE lock-step march must beat the
    same scenarios run as ``B // shard`` sequential shard-sized passes
    (``shard = 8`` — the host python-kernel shard size from
    :meth:`repro.backend.ArrayBackend.ensemble_shard_size`) by >= 3x,
    asserted outright.  Both sides pin ``kernel="python"`` so the entry
    ratchets what whole-batch array dispatch buys over fragmented
    marches; trajectories are cross-checked against independently
    integrated sample scenarios.
    """
    from dataclasses import replace

    from repro.circuits.library import T_NOMINAL, VcoParams
    from repro.dae import ensemble_from_factory
    from repro.transient import (
        TransientOptions,
        merge_ensemble_results,
        simulate_transient,
        simulate_transient_ensemble,
    )

    base = VcoParams.vacuum()
    control_voltages = np.linspace(0.8, 2.4, batch)

    def factory(vc):
        return MemsVcoDae(
            replace(base, control_offset=vc), constant_control=True
        )

    def stacked_factory(values):
        return MemsVcoDae(
            replace(base, control_offset=np.asarray(values)),
            constant_control=True,
        )

    ensemble = ensemble_from_factory(
        factory, control_voltages, stacked_factory
    )
    x0 = np.tile([1.0, 0.0, 0.0, 0.0], (batch, 1))
    options = TransientOptions(
        integrator="trap", dt=T_NOMINAL / 100, kernel="python"
    )
    horizon = 10 * T_NOMINAL

    with WallTimer() as march_timer:
        march = simulate_transient_ensemble(
            ensemble, x0, 0.0, horizon, options
        )
    with WallTimer() as shard_timer:
        pieces = []
        for start in range(0, batch, shard):
            indices = np.arange(start, min(start + shard, batch))
            pieces.append(simulate_transient_ensemble(
                ensemble.subset(indices), x0[indices], 0.0, horizon,
                options,
            ))
    merged = merge_ensemble_results(pieces)

    # Shard composition changes which chord factors scenarios share, so
    # agreement is within solver tolerance rather than bit-exact.
    scale = np.abs(march.x).max()
    mismatch = float(np.abs(merged.x - march.x).max() / scale)
    assert mismatch < 1e-4, (
        f"large-B march diverged from shard-sized passes: {mismatch}"
    )
    # Spot-check the big march against independently integrated members.
    for index in (0, batch // 2, batch - 1):
        solo = simulate_transient(
            factory(control_voltages[index]), x0[index], 0.0, horizon,
            options,
        )
        ref_scale = np.maximum(np.abs(solo.x[-1]), 1e-12)
        solo_mismatch = float(np.max(
            np.abs(march.x[-1, index] - solo.x[-1]) / ref_scale
        ))
        assert solo_mismatch < 1e-4, (
            f"scenario {index} diverged from its serial reference: "
            f"{solo_mismatch}"
        )

    speedup = shard_timer.elapsed / march_timer.elapsed
    assert speedup >= 3.0, (
        f"B={batch} march only {speedup:.2f}x faster than "
        f"{batch // shard} sequential B={shard} passes (require >= 3x)"
    )
    assert march.stats["backend"]["routing"] == "python-lockstep"
    return {
        "name": "ensemble_large_b",
        "steps": int(march.stats["steps"]) * batch,
        "wall_time_s": march_timer.elapsed,
        "wall_time_retimed_s": march_timer.elapsed,
        "sharded_wall_time_s": shard_timer.elapsed,
        "batch_size": batch,
        "shard_size": shard,
        "speedup_vs_sharded_passes": speedup,
    }


def _bench_transient_adaptive_compiled():
    """Compiled adaptive march versus the python adaptive loop (ratcheted).

    Win condition for the adaptive-step kernelization: a long
    error-controlled VCO transient through ``sweep_adaptive`` must beat
    the python adaptive loop by >= 2x whenever a compiled backend is
    available, while accepting the same number of steps.
    """
    from repro.circuits.library import T_NOMINAL, VcoParams
    from repro.transient import TransientOptions, simulate_transient

    dae = MemsVcoDae(VcoParams.vacuum(), constant_control=True)
    x0 = [1.0, 0.0, 0.0, 0.0]
    horizon = 40 * T_NOMINAL

    def options(kernel):
        return TransientOptions(
            integrator="trap", dt=T_NOMINAL / 500, adaptive=True,
            kernel=kernel, max_steps=2_000_000,
        )

    with WallTimer() as python_timer:
        python_run = simulate_transient(
            dae, x0, 0.0, horizon, options("python")
        )
    with WallTimer() as compiled_timer:
        compiled_run = simulate_transient(
            dae, x0, 0.0, horizon, options("auto")
        )

    mode = compiled_run.stats["kernel"]["mode"]
    # Over tens of thousands of error-controlled steps, ulp-level
    # differences between the python and kernel linear solves accumulate
    # into a small dt-sequence phase drift; exact short-horizon parity is
    # pinned down in tests/test_kernels.py, the bench only guards against
    # gross divergence.
    assert abs(
        compiled_run.stats["steps"] - python_run.stats["steps"]
    ) <= 2, (
        "compiled adaptive march accepted a different step count than "
        "the python loop"
    )
    scale = np.abs(python_run.x).max()
    mismatch = float(np.abs(
        np.asarray(compiled_run.x)[-1] - np.asarray(python_run.x)[-1]
    ).max() / scale)
    assert mismatch < 1e-3, (
        f"compiled adaptive march diverged from the python loop: "
        f"{mismatch}"
    )
    speedup = python_timer.elapsed / compiled_timer.elapsed
    if mode != "python":
        assert speedup >= 2.0, (
            f"compiled ({mode}) adaptive march only {speedup:.2f}x faster "
            f"than the python adaptive loop (require >= 2x)"
        )
    return {
        "name": "transient_adaptive_compiled",
        "steps": int(compiled_run.stats["steps"]),
        "wall_time_s": compiled_timer.elapsed,
        "wall_time_retimed_s": compiled_timer.elapsed,
        "python_wall_time_s": python_timer.elapsed,
        "kernel_mode": mode,
        "speedup_vs_python_adaptive": speedup,
    }


def _bench_service_warm_envelope():
    """Warm-vs-cold envelope through the simulation service (ratcheted).

    The service tentpole's win condition: resubmitting a bit-identical
    :class:`EnvelopeRequest` must replay the cached serialized result —
    no §4.1 initialisation, no envelope march — at least 5x faster than
    the cold run and bit-identical with it.  Two entries join the
    ratchet: the cold end-to-end submission (request dispatch + DC →
    settle → HB + envelope) and the warm replay (cache lookup + result
    deserialization); the >= 5x speedup is asserted outright so a cache
    regression fails the bench even before the baseline comparison.
    """
    from repro.api import EnvelopeRequest
    from repro.circuits.library import T_NOMINAL, VcoParams
    from repro.service import SimulationService
    from repro.wampde import WampdeEnvelopeOptions

    params = VcoParams.vacuum()

    def request():
        return EnvelopeRequest(
            dae=MemsVcoDae(params),
            t2_start=0.0, t2_stop=10e-6, num_steps=100,
            unforced_dae=MemsVcoDae(params, constant_control=True),
            num_t1=25, period_guess=T_NOMINAL,
            options=WampdeEnvelopeOptions(),
        )

    replays = 5
    with SimulationService(workers=0) as service:
        with WallTimer() as cold_timer:
            cold_job = service.submit(request())
        cold = cold_job.result
        # Replay a few times and ratchet the mean: a single replay is
        # milliseconds of JSON decoding, too jittery to gate on alone.
        with WallTimer() as warm_timer:
            warm_jobs = [service.submit(request()) for _ in range(replays)]
        warm_mean = warm_timer.elapsed / replays

    for warm_job in warm_jobs:
        assert warm_job.cache_hit, "exact resubmission missed the cache"
        warm = warm_job.result
        assert np.array_equal(cold.omega, warm.omega), \
            "cache replay is not bit-identical (omega)"
        assert np.array_equal(cold.samples, warm.samples), \
            "cache replay is not bit-identical (samples)"
    speedup = cold_timer.elapsed / warm_mean
    assert speedup >= 5.0, (
        f"warm replay only {speedup:.2f}x faster than the cold "
        f"envelope (require >= 5x)"
    )
    return [
        {
            "name": "service_envelope_cold",
            "steps": int(cold.stats["steps"]),
            "wall_time_s": cold_timer.elapsed,
            "wall_time_retimed_s": cold_timer.elapsed,
        },
        {
            "name": "service_warm_envelope",
            "steps": 0,
            "wall_time_s": warm_mean,
            "wall_time_retimed_s": warm_mean,
            "cold_wall_time_s": cold_timer.elapsed,
            "replays": replays,
            "replay_speedup": speedup,
        },
    ]


def test_speedup_table(benchmark, fig12_data, air_ic, output_dir):
    params, samples, f0 = air_ic
    horizon = fig12_data["horizon"]
    forced = MemsVcoDae(params)

    from repro.wampde import WampdeEnvelopeOptions

    with WallTimer() as retimer:
        benchmark.pedantic(
            solve_wampde_envelope,
            args=(forced, samples, f0, 0.0, horizon,
                  fig12_data["wampde"]["steps"]),
            kwargs={"options": WampdeEnvelopeOptions(integrator="trap")},
            rounds=1, iterations=1,
        )

    wampde_time = fig12_data["wampde"]["time"]
    reference_time = fig12_data["reference_time"]
    compiled_time = fig12_data["reference_compiled_time"]
    compiled_mode = fig12_data["reference_compiled_mode"]
    kernel_speedup = reference_time / compiled_time
    # The tentpole win condition: the compiled sweep must run the
    # 1000 pts/cycle reference at least 3x faster than the python
    # oracle whenever a compiled backend is actually available.
    if compiled_mode != "python":
        assert kernel_speedup >= 3.0, (
            f"compiled ({compiled_mode}) reference only "
            f"{kernel_speedup:.2f}x faster than the python oracle "
            f"(require >= 3x)"
        )
    speedup = reference_time / wampde_time
    # The paper claims two orders of magnitude; allow a generous band for
    # host variation while requiring the order of magnitude to hold.
    assert speedup > 20.0

    rows = [
        ["ODE: 50 pts/cycle (inaccurate: "
         f"{fig12_data['transient'][50]['phase_error_cycles']:.3f} cyc err)",
         fig12_data["transient"][50]["steps"],
         fig12_data["transient"][50]["time"], "-"],
        ["ODE: 100 pts/cycle (inaccurate: "
         f"{fig12_data['transient'][100]['phase_error_cycles']:.3f} cyc err)",
         fig12_data["transient"][100]["steps"],
         fig12_data["transient"][100]["time"], "-"],
        ["ODE: 1000 pts/cycle (WaMPDE-comparable accuracy)",
         fig12_data["reference_steps"], reference_time, 1.0],
        [f"ODE: 1000 pts/cycle, compiled kernel ({compiled_mode})",
         fig12_data["reference_compiled_steps"], compiled_time,
         kernel_speedup],
        ["WaMPDE envelope",
         fig12_data["wampde"]["steps"], wampde_time, speedup],
    ]
    print()
    print(format_table(
        ["method", "steps", "wall time [s]", "speedup vs accurate ODE"],
        rows,
        title=f"Speedup over {horizon*1e3:.2f} ms of the modified VCO "
              "(paper: two orders of magnitude)",
    ))
    write_csv(
        output_dir / "speedup_table.csv",
        ["steps", "wall_time_s"],
        [[fig12_data["transient"][50]["steps"],
          fig12_data["transient"][100]["steps"],
          fig12_data["reference_steps"],
          fig12_data["wampde"]["steps"]],
         [fig12_data["transient"][50]["time"],
          fig12_data["transient"][100]["time"],
          reference_time, wampde_time]],
    )

    ported = _bench_ported_solvers()
    print(format_table(
        ["ported solver", "newton iterations", "wall time [s]"],
        [[e["name"], e["steps"], e["wall_time_s"]] for e in ported],
        title="SolverCore-ported steady-state workloads (ratcheted)",
    ))

    ensemble_entry = _bench_ensemble_sweep()
    print(format_table(
        ["metric", "value"],
        [["scenarios (B)", ensemble_entry["batch_size"]],
         ["batched wall time [s]", ensemble_entry["wall_time_s"]],
         ["serial-loop wall time [s]", ensemble_entry["serial_wall_time_s"]],
         ["speedup vs serial loop",
          ensemble_entry["speedup_vs_serial_loop"]]],
        title="Ensemble control-voltage sweep (ratcheted; >= 2x enforced)",
    ))

    ensemble_compiled_entry = _bench_ensemble_sweep_compiled()
    print(format_table(
        ["metric", "value"],
        [["scenarios (B)", ensemble_compiled_entry["batch_size"]],
         ["kernel mode", ensemble_compiled_entry["kernel_mode"]],
         ["compiled wall time [s]", ensemble_compiled_entry["wall_time_s"]],
         ["python lock-step wall time [s]",
          ensemble_compiled_entry["python_wall_time_s"]],
         ["speedup vs python lock-step",
          ensemble_compiled_entry["speedup_vs_python_lockstep"]]],
        title="Compiled batched ensemble march "
              "(ratcheted; >= 3x enforced when compiled)",
    ))

    large_b_entry = _bench_ensemble_large_b()
    print(format_table(
        ["metric", "value"],
        [["scenarios (B)", large_b_entry["batch_size"]],
         ["shard size", large_b_entry["shard_size"]],
         ["single-march wall time [s]", large_b_entry["wall_time_s"]],
         ["sharded-passes wall time [s]",
          large_b_entry["sharded_wall_time_s"]],
         ["speedup vs sharded passes",
          large_b_entry["speedup_vs_sharded_passes"]]],
        title="Large-B ensemble march vs shard-sized passes "
              "(ratcheted; >= 3x enforced)",
    ))

    adaptive_compiled_entry = _bench_transient_adaptive_compiled()
    print(format_table(
        ["metric", "value"],
        [["kernel mode", adaptive_compiled_entry["kernel_mode"]],
         ["compiled wall time [s]", adaptive_compiled_entry["wall_time_s"]],
         ["python adaptive wall time [s]",
          adaptive_compiled_entry["python_wall_time_s"]],
         ["speedup vs python adaptive",
          adaptive_compiled_entry["speedup_vs_python_adaptive"]]],
        title="Compiled adaptive-step march "
              "(ratcheted; >= 2x enforced when compiled)",
    ))

    service_entries = _bench_service_warm_envelope()
    cold_entry, warm_entry = service_entries
    print(format_table(
        ["metric", "value"],
        [["cold submission wall time [s]", cold_entry["wall_time_s"]],
         ["warm replay wall time [s]", warm_entry["wall_time_s"]],
         ["replay speedup", warm_entry["replay_speedup"]]],
        title="Service warm-start cache: envelope resubmission "
              "(ratcheted; >= 5x and bit-identity enforced)",
    ))

    payload = {
        "schema_version": 1,
        "bench": "speedup_table",
        "horizon_s": horizon,
        "methods": [
            # wall_time_retimed_s is the second, in-bench timing where a
            # separate retiming pass exists (the envelope) and the single
            # measurement otherwise, so check_regression compares the
            # same field across every method.
            {
                "name": "transient_50_pts_per_cycle",
                "steps": int(fig12_data["transient"][50]["steps"]),
                "wall_time_s": fig12_data["transient"][50]["time"],
                "wall_time_retimed_s": fig12_data["transient"][50]["time"],
                "phase_error_cycles":
                    fig12_data["transient"][50]["phase_error_cycles"],
            },
            {
                "name": "transient_100_pts_per_cycle",
                "steps": int(fig12_data["transient"][100]["steps"]),
                "wall_time_s": fig12_data["transient"][100]["time"],
                "wall_time_retimed_s": fig12_data["transient"][100]["time"],
                "phase_error_cycles":
                    fig12_data["transient"][100]["phase_error_cycles"],
            },
            {
                "name": "transient_1000_pts_per_cycle_reference",
                "steps": int(fig12_data["reference_steps"]),
                "wall_time_s": reference_time,
                "wall_time_retimed_s": reference_time,
                "phase_error_cycles": 0.0,
            },
            {
                "name": "transient_reference_compiled",
                "steps": int(fig12_data["reference_compiled_steps"]),
                "wall_time_s": compiled_time,
                "wall_time_retimed_s": compiled_time,
                "phase_error_cycles": 0.0,
                "kernel_mode": compiled_mode,
                "speedup_vs_python_reference": kernel_speedup,
            },
            {
                "name": "wampde_envelope",
                "steps": int(fig12_data["wampde"]["steps"]),
                "wall_time_s": wampde_time,
                "wall_time_retimed_s": retimer.elapsed,
                "phase_error_cycles":
                    fig12_data["wampde"]["phase_error_cycles"],
            },
            *ported,
            ensemble_entry,
            ensemble_compiled_entry,
            large_b_entry,
            adaptive_compiled_entry,
            *service_entries,
        ],
        "speedup_vs_accurate_ode": speedup,
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    (output_dir / "BENCH_speedup.json").write_text(text)
    BENCH_JSON.write_text(text)
