"""Shared fixtures for the figure-reproduction benchmark harness.

Every bench regenerates the data behind one of the paper's figures (the
paper has no tables), prints the same series as a text table, and writes
CSV into ``benchmarks/output/``.  Run with::

    pytest benchmarks/ --benchmark-only -s

Set ``REPRO_FULL=1`` to run the heavy benches at the paper's full horizons
(e.g. the complete 3 ms modified-VCO run of Fig 12) instead of the scaled
defaults.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Output directory for CSV series.
OUTPUT_DIR = Path(__file__).parent / "output"


def full_runs_enabled():
    """Whether the heavy full-horizon variants were requested."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false")


@pytest.fixture(scope="session")
def output_dir():
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def vacuum_ic():
    """Initial condition of the vacuum VCO (paper §5, first experiment)."""
    from repro.circuits.library import MemsVcoDae, T_NOMINAL, VcoParams
    from repro.wampde import oscillator_initial_condition

    params = VcoParams.vacuum()
    unforced = MemsVcoDae(params, constant_control=True)
    samples, f0 = oscillator_initial_condition(
        unforced, num_t1=25, period_guess=T_NOMINAL
    )
    return params, samples, f0


@pytest.fixture(scope="session")
def air_ic():
    """Initial condition of the air (modified) VCO (paper §5, Figs 10-12)."""
    from repro.circuits.library import MemsVcoDae, T_NOMINAL, VcoParams
    from repro.wampde import oscillator_initial_condition

    params = VcoParams.air()
    unforced = MemsVcoDae(params, constant_control=True)
    samples, f0 = oscillator_initial_condition(
        unforced, num_t1=25, period_guess=T_NOMINAL
    )
    return params, samples, f0


@pytest.fixture(scope="session")
def fig12_data(air_ic):
    """Shared heavy computation behind Fig 12 and the speedup table.

    Runs, on the modified (air) VCO:

    * the accuracy reference — transient at 1000 points/cycle (the rate
      the paper says transient needs for WaMPDE-comparable accuracy);
    * transient at 50 and 100 points/cycle (the paper's Fig 12 curves);
    * the WaMPDE envelope.

    Default horizon is 0.36 ms ("a few cycles at 10% of the full run",
    as Fig 12's caption samples); ``REPRO_FULL=1`` runs the paper's full
    3 ms.  All wall-clock times are recorded once here and reported by
    both benches.
    """
    import numpy as np

    from repro.analysis import phase_error_vs_reference
    from repro.circuits.library import MemsVcoDae, T_NOMINAL
    from repro.transient import TransientOptions, simulate_transient
    from repro.utils import WallTimer
    from repro.wampde import solve_wampde_envelope

    params, samples, f0 = air_ic
    forced = MemsVcoDae(params)
    horizon = 3e-3 if full_runs_enabled() else 0.36e-3
    # ~330 WaMPDE steps per control period (h ~ 3 us).  The trapezoidal
    # rule is used for this fixture: it is second order (the theta
    # default trades a first-order damping bias for robustness, which
    # costs phase accuracy here) and is stable for the overdamped air
    # variant at these step sizes.
    wampde_steps = max(int(round(333 * horizon / params.control_period)), 120)

    data = {"horizon": horizon, "transient": {}, "params": params}

    # The NumPy path is the reference oracle every comparison is made
    # against, so the ratcheted transient entries pin kernel="python";
    # the compiled sweep is timed separately below and ratcheted as its
    # own entry (transient_reference_compiled).
    with WallTimer() as timer:
        reference = simulate_transient(
            forced, samples[0], 0.0, horizon,
            TransientOptions(
                integrator="trap", dt=T_NOMINAL / 1000, kernel="python"
            ),
        )
    data["reference_time"] = timer.elapsed
    data["reference_steps"] = reference.stats["steps"]
    t_ref, v_ref = reference.t, reference["v(tank)"]

    with WallTimer() as timer:
        compiled = simulate_transient(
            forced, samples[0], 0.0, horizon,
            TransientOptions(
                integrator="trap", dt=T_NOMINAL / 1000, kernel="auto"
            ),
        )
    import numpy as _np

    scale = float(_np.abs(reference.x).max()) or 1.0
    drift = float(_np.abs(compiled.x - reference.x).max()) / scale
    assert drift < 1e-8, (
        f"compiled reference trajectory drifted {drift:.2e} from the "
        f"python oracle"
    )
    data["reference_compiled_time"] = timer.elapsed
    data["reference_compiled_steps"] = compiled.stats["steps"]
    data["reference_compiled_mode"] = compiled.stats["kernel"]["mode"]

    for pts in (50, 100):
        with WallTimer() as timer:
            run = simulate_transient(
                forced, samples[0], 0.0, horizon,
                TransientOptions(
                    integrator="trap", dt=T_NOMINAL / pts, kernel="python"
                ),
            )
        _t, err = phase_error_vs_reference(
            run.t, run["v(tank)"], t_ref, v_ref
        )
        data["transient"][pts] = {
            "time": timer.elapsed,
            "steps": run.stats["steps"],
            "phase_error_cycles": float(np.abs(err).max()),
        }

    from repro.wampde import WampdeEnvelopeOptions

    with WallTimer() as timer:
        env = solve_wampde_envelope(
            forced, samples, f0, 0.0, horizon, wampde_steps,
            WampdeEnvelopeOptions(integrator="trap"),
        )
    eval_times = np.linspace(0.0, horizon, 50000)
    rec = env.reconstruct("v(tank)", eval_times)
    _t, err = phase_error_vs_reference(eval_times, rec, t_ref, v_ref)
    data["wampde"] = {
        "time": timer.elapsed,
        "steps": wampde_steps,
        "phase_error_cycles": float(np.abs(err).max()),
        "envelope": env,
    }
    data["reference"] = (t_ref, v_ref)
    return data
