"""Figure 7: VCO local frequency versus time (WaMPDE envelope).

Paper setup: near-vacuum MEMS damping; 1.5 V initial control giving
~0.75 MHz; control varied sinusoidally with period 30x the nominal
oscillation period (40 us).  Claim: the local frequency "varies by a
factor of almost 3" (the figure's axis spans ~0.6-2.0 MHz).
"""

import numpy as np

from repro.circuits.library import MemsVcoDae
from repro.utils import ascii_plot, format_table, write_csv
from repro.wampde import solve_wampde_envelope


def run_fig07(params, samples, f0):
    forced = MemsVcoDae(params)
    return solve_wampde_envelope(forced, samples, f0, 0.0, 60e-6, 600)


def test_fig07_vco_frequency(benchmark, vacuum_ic, output_dir):
    params, samples, f0 = vacuum_ic
    env = benchmark.pedantic(
        run_fig07, args=(params, samples, f0), rounds=1, iterations=1
    )

    ratio = env.omega.max() / env.omega.min()
    assert 2.5 < ratio < 4.5  # "factor of almost 3"
    assert abs(env.omega[0] - 0.75e6) / 0.75e6 < 0.01

    idx = np.linspace(0, env.t2.size - 1, 13).astype(int)
    rows = [
        [env.t2[i] * 1e6, env.omega[i] / 1e6] for i in idx
    ]
    print()
    print(format_table(
        ["t2 [us]", "local frequency [MHz]"], rows,
        title="Fig 7 — VCO frequency modulation (paper: 0.75 start, "
              "0.6-2.0 range, ~3x swing)",
    ))
    summary = [
        ["initial frequency [MHz] (paper: ~0.75)", env.omega[0] / 1e6],
        ["min frequency [MHz] (paper axis: 0.6)", env.omega.min() / 1e6],
        ["max frequency [MHz] (paper axis: 2.0)", env.omega.max() / 1e6],
        ["swing factor (paper: almost 3)", ratio],
        ["t2 steps", env.stats["steps"]],
        ["Newton iterations", env.stats["newton_iterations"]],
    ]
    print(format_table(["quantity", "value"], summary))
    print(ascii_plot(env.t2 * 1e6, env.omega / 1e6,
                     title="local frequency [MHz] vs t2 [us]"))
    write_csv(output_dir / "fig07_vco_frequency.csv",
              ["t2_s", "frequency_hz"], [env.t2, env.omega])
