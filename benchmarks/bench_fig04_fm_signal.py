"""Figure 4: the prototypical FM signal (paper eq. 3).

f0 = 1 MHz, f2 = 20 kHz, k = 8 pi; instantaneous frequency (eq. 4) swings
between f0 - k f2 ~ 0.5 MHz and f0 + k f2 ~ 1.5 MHz.
"""

import numpy as np

from repro.analysis import frequency_from_crossings
from repro.signals import fm_instantaneous_frequency, fm_signal
from repro.signals.fm import F0_PAPER, F2_PAPER, K_PAPER
from repro.utils import ascii_plot, format_table, write_csv


def generate_fig04():
    t = np.linspace(0.0, 7e-5, 7001)  # the paper's plot window
    x = fm_signal(t)
    mid, measured = frequency_from_crossings(t, x)
    return t, x, mid, measured


def test_fig04_fm_signal(benchmark, output_dir):
    t, x, mid, measured = benchmark(generate_fig04)

    expected = fm_instantaneous_frequency(mid)
    assert np.max(np.abs(measured - expected)) < 0.1e6

    deviation = K_PAPER * F2_PAPER
    rows = [
        ["carrier f0 [MHz] (paper: 1)", F0_PAPER / 1e6],
        ["modulation f2 [kHz] (paper: 20)", F2_PAPER / 1e3],
        ["modulation index k (paper: 8*pi)", K_PAPER],
        ["peak deviation k*f2 [MHz]", deviation / 1e6],
        ["measured min frequency [MHz]", measured.min() / 1e6],
        ["measured max frequency [MHz]", measured.max() / 1e6],
    ]
    print()
    print(format_table(["quantity", "value"], rows,
                       title="Fig 4 — prototypical FM signal x(t)"))
    print(ascii_plot(t, x, title="x(t) over 70 us: note varying density"))
    write_csv(output_dir / "fig04_fm_signal.csv", ["t", "x"], [t, x])
