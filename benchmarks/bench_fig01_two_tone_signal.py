"""Figure 1: the two-tone quasiperiodic signal y(t) (paper eq. 1).

Paper claim: sampling y(t) directly needs ``n * T2/T1`` points per slow
period — 750 for 15 points/cycle at T1 = 20 ms, T2 = 1 s — and the count
grows with the rate separation.
"""

import numpy as np

from repro.signals import (
    transient_sample_count,
    two_tone_signal,
    undulation_count,
)
from repro.utils import ascii_plot, format_table, write_csv


def generate_fig01():
    """Sample y(t) exactly as the paper's Fig 1 (750 points over 1 s)."""
    count = transient_sample_count()  # 750
    t = np.linspace(0.0, 1.0, count)
    y = two_tone_signal(t)
    return t, y


def test_fig01_two_tone_signal(benchmark, output_dir):
    t, y = benchmark(generate_fig01)

    assert t.size == 750  # the paper's number
    # 50 fast cycles in one slow period -> ~100 extrema.
    undulations = undulation_count(y)
    assert 90 <= undulations <= 110

    rows = [
        ["samples for one slow period (paper: 750)", t.size],
        ["fast cycles per slow period", 50],
        ["extrema counted in y(t)", undulations],
        ["samples at separation 1000x (same accuracy)",
         transient_sample_count(period1=1e-3, period2=1.0)],
    ]
    print()
    print(format_table(["quantity", "value"], rows,
                       title="Fig 1 — direct sampling cost of y(t)"))
    print(ascii_plot(t[:150], y[:150], title="y(t), first 0.2 s (undulations)"))
    write_csv(output_dir / "fig01_two_tone.csv", ["t", "y"], [t, y])
