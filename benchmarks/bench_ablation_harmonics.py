"""Ablation: number of t1 collocation points (harmonics) in the WaMPDE.

Paper §4: "the Fourier series (19) can be truncated to N0 = 2M+1 terms".
This bench sweeps N0 on the vacuum VCO and reports how the omega(t2)
trace converges (spectral accuracy in the t1 direction) and how runtime
scales — the knob a user actually turns.
"""

import numpy as np

from repro.circuits.library import MemsVcoDae, T_NOMINAL, VcoParams
from repro.utils import WallTimer, format_table, write_csv
from repro.wampde import oscillator_initial_condition, solve_wampde_envelope


def run_sweep():
    params = VcoParams.vacuum()
    unforced = MemsVcoDae(params, constant_control=True)
    forced = MemsVcoDae(params)
    horizon, steps = 40e-6, 300
    sweep = {}
    for num_t1 in (9, 13, 17, 25, 33):
        samples, f0 = oscillator_initial_condition(
            unforced, num_t1=num_t1, period_guess=T_NOMINAL
        )
        with WallTimer() as timer:
            env = solve_wampde_envelope(
                forced, samples, f0, 0.0, horizon, steps
            )
        sweep[num_t1] = {
            "time": timer.elapsed,
            "omega": env.omega,
            "t2": env.t2,
            "newton": env.stats["newton_iterations"],
        }
    return sweep


def test_ablation_harmonics(benchmark, output_dir):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    finest = sweep[33]["omega"]
    rows = []
    deviations = {}
    for num_t1, record in sorted(sweep.items()):
        deviation = float(
            np.sqrt(np.mean((record["omega"] - finest) ** 2)) / finest.mean()
        )
        deviations[num_t1] = deviation
        rows.append([
            num_t1, (num_t1 - 1) // 2, deviation, record["time"],
            record["newton"],
        ])

    # Spectral convergence: deviation falls fast with N0.
    assert deviations[17] < 5e-3
    assert deviations[25] < deviations[13]
    assert deviations[25] < 5e-4

    print()
    print(format_table(
        ["N0 (t1 points)", "harmonics M", "rel. RMS omega deviation",
         "wall time [s]", "Newton iters"],
        rows,
        title="Ablation — t1 resolution of the WaMPDE envelope "
              "(vacuum VCO, 40 us)",
    ))
    write_csv(
        output_dir / "ablation_harmonics.csv",
        ["N0", "rel_rms_omega_deviation", "wall_time_s"],
        [[r[0] for r in rows], [r[2] for r in rows], [r[3] for r in rows]],
    )
