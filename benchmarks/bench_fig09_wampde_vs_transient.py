"""Figure 9: WaMPDE reconstruction versus direct transient simulation.

Paper claim: "The match is so close that it is difficult to tell the two
waveforms apart; however, the thickening of the lines at about 60 us
indicates a deviation of the transient result from the WaMPDE solution."
(i.e. the *transient* accumulates phase error, not the WaMPDE).
"""

import numpy as np

from repro.analysis import max_error, phase_error_vs_reference, rms_error
from repro.circuits.library import MemsVcoDae, T_NOMINAL
from repro.transient import TransientOptions, simulate_transient
from repro.utils import format_table, write_csv
from repro.wampde import solve_wampde_envelope


def run_fig09(params, samples, f0):
    forced = MemsVcoDae(params)
    env = solve_wampde_envelope(forced, samples, f0, 0.0, 62e-6, 1600)
    transient = simulate_transient(
        forced, samples[0], 0.0, 62e-6,
        TransientOptions(integrator="trap", dt=T_NOMINAL / 200),
    )
    return env, transient


def test_fig09_wampde_vs_transient(benchmark, vacuum_ic, output_dir):
    params, samples, f0 = vacuum_ic
    env, transient = benchmark.pedantic(
        run_fig09, args=(params, samples, f0), rounds=1, iterations=1
    )

    times = np.linspace(0.0, 60e-6, 6001)
    rec = env.reconstruct("v(tank)", times)
    ref = transient.sample(times, "v(tank)")

    # Early window: visually indistinguishable (paper).
    early = times < 30e-6
    early_max = max_error(rec[early], ref[early])
    late = times >= 45e-6
    late_max = max_error(rec[late], ref[late])
    assert early_max < 0.15  # ~4 V amplitude

    _pt, phase_err = phase_error_vs_reference(times, rec, transient.t,
                                              transient["v(tank)"])

    rows = [
        ["max |diff| 0-30 us [V] (amplitude ~4 V)", early_max],
        ["max |diff| 45-60 us [V] ('thickening')", late_max],
        ["rms difference over full window [V]", rms_error(rec, ref)],
        ["peak phase difference [cycles]", np.abs(phase_err).max()],
        ["transient steps (200 pts/cycle)", transient.stats["steps"]],
        ["WaMPDE t2 steps", env.stats["steps"]],
    ]
    print()
    print(format_table(
        ["quantity", "value"], rows,
        title="Fig 9 — WaMPDE vs transient: overlay error",
    ))
    write_csv(output_dir / "fig09_overlay.csv",
              ["t", "wampde", "transient"], [times, rec, ref])
