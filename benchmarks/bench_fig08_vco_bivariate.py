"""Figure 8: bivariate representation of the VCO capacitor voltage.

Paper claim: "the controlling voltage changes not only the local
frequency, but also the amplitude and shape of the oscillator waveform."
The bench regenerates the xhat(t1, t2) surface and quantifies both
amplitude and shape (harmonic-content) modulation along t2.
"""

import numpy as np

from repro.circuits.library import MemsVcoDae
from repro.utils import format_table, write_csv
from repro.wampde import solve_wampde_envelope


def run_fig08(params, samples, f0):
    forced = MemsVcoDae(params)
    env = solve_wampde_envelope(forced, samples, f0, 0.0, 60e-6, 600)
    return env.bivariate("v(tank)")


def test_fig08_vco_bivariate(benchmark, vacuum_ic, output_dir):
    params, samples, f0 = vacuum_ic
    waveform = benchmark.pedantic(
        run_fig08, args=(params, samples, f0), rounds=1, iterations=1
    )

    amplitude = waveform.amplitude_vs_t2()
    fundamental = waveform.fundamental_magnitude_vs_t2()
    shape = fundamental / amplitude

    assert amplitude.max() - amplitude.min() > 0.1  # amplitude modulation
    assert shape.max() - shape.min() > 0.005  # shape modulation

    idx = np.linspace(0, waveform.num_t2 - 1, 9).astype(int)
    rows = [
        [waveform.t2[i] * 1e6, amplitude[i], shape[i]] for i in idx
    ]
    print()
    print(format_table(
        ["t2 [us]", "peak-to-peak [V]", "fundamental fraction"], rows,
        title="Fig 8 — bivariate capacitor voltage: amplitude & shape vs t2",
    ))

    # Persist a decimated surface grid for external plotting.
    t1 = waveform.t1_grid()
    rows_idx = np.linspace(0, waveform.num_t2 - 1, 25).astype(int)
    write_csv(
        output_dir / "fig08_vco_bivariate.csv",
        ["t1"] + [f"t2us_{waveform.t2[i]*1e6:.2f}" for i in rows_idx],
        [t1] + [waveform.samples[i] for i in rows_idx],
    )
