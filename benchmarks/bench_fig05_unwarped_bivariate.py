"""Figure 5: the *unwarped* bivariate FM form xhat1 (paper eq. 5).

Paper claim: xhat1 undergoes about ``m = k/(2 pi)`` oscillations along t2
(4 here, and "in practice k is often of the order of f0/f2*2pi" — i.e.
~50 for these parameters), so it cannot be sampled compactly; a 2-D grid
would need as many points as brute-force transient sampling.
"""

import numpy as np

from repro.signals import fm_unwarped_bivariate, grid_undulation_count
from repro.signals.fm import F0_PAPER, F2_PAPER, K_PAPER
from repro.utils import format_table, write_csv


def generate_fig05():
    # Sample the t2 axis finely enough to resolve the k-driven undulations.
    t1 = np.linspace(0.0, 1.0 / F0_PAPER, 31, endpoint=False)
    t2 = np.linspace(0.0, 1.0 / F2_PAPER, 801, endpoint=False)
    surface = fm_unwarped_bivariate(t1[None, :], t2[:, None])
    t2_undulations = grid_undulation_count(surface, axis=0)
    t1_undulations = grid_undulation_count(surface.T, axis=0)
    return surface, t1_undulations, t2_undulations


def test_fig05_unwarped_bivariate(benchmark, output_dir):
    surface, t1_und, t2_und = benchmark(generate_fig05)

    oscillations_t2 = K_PAPER / (2 * np.pi)  # = 4 for k = 8 pi
    # Each oscillation contributes 2 extrema.
    assert t2_und >= 2 * oscillations_t2 - 1

    # Samples needed along t2 at, say, 15 per undulation period:
    t2_samples_needed = int(15 * oscillations_t2)
    practical_k = 2 * np.pi * F0_PAPER / F2_PAPER  # "often of order f0/f2"
    rows = [
        ["k/(2 pi) oscillations along t2 (paper: ~4)", oscillations_t2],
        ["extrema counted along t2", t2_und],
        ["extrema counted along t1", t1_und],
        ["t2 samples needed (15/undulation)", t2_samples_needed],
        ["practical k (order f0/f2 * 2pi)", practical_k],
        ["t2 samples at practical k", int(15 * practical_k / (2 * np.pi))],
    ]
    print()
    print(format_table(["quantity", "value"], rows,
                       title="Fig 5 — unwarped bivariate xhat1: not compact"))
    write_csv(
        output_dir / "fig05_unwarped_slice.csv",
        ["t2", "xhat1_at_t1_0"],
        [np.linspace(0.0, 1.0 / F2_PAPER, 801, endpoint=False), surface[:, 0]],
    )
