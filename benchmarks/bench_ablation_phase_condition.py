"""Ablation: choice of phase condition.

Paper §3: "the phase condition can, for instance, require that the phase
of the t1-variation ... vary only slowly", eq. (20) fixes a Fourier
coefficient's imaginary part, and §5 uses "a time-domain equivalent".
All valid choices must yield the *same physics*: local frequencies that
agree to within the order-f2 ambiguity the paper discusses.
"""

import numpy as np

from repro.circuits.library import MemsVcoDae, T_NOMINAL, VcoParams
from repro.utils import WallTimer, format_table, write_csv
from repro.wampde import oscillator_initial_condition, solve_wampde_envelope
from repro.wampde.envelope import WampdeEnvelopeOptions


def run_conditions():
    params = VcoParams.vacuum()
    unforced = MemsVcoDae(params, constant_control=True)
    forced = MemsVcoDae(params)
    horizon, steps = 40e-6, 300
    results = {}
    for condition in ("derivative", "fourier", "value"):
        samples, f0 = oscillator_initial_condition(
            unforced, num_t1=25, period_guess=T_NOMINAL,
            phase_condition=condition,
        )
        with WallTimer() as timer:
            env = solve_wampde_envelope(
                forced, samples, f0, 0.0, horizon, steps,
                WampdeEnvelopeOptions(phase_condition=condition),
            )
        results[condition] = {
            "time": timer.elapsed,
            "omega": env.omega,
            "newton": env.stats["newton_iterations"],
        }
    return results


def test_ablation_phase_condition(benchmark, output_dir):
    results = benchmark.pedantic(run_conditions, rounds=1, iterations=1)

    reference = results["derivative"]["omega"]
    forcing_rate = 1.0 / VcoParams.vacuum().control_period  # = f2 = 25 kHz
    rows = []
    for name, record in results.items():
        deviation = float(np.max(np.abs(record["omega"] - reference)))
        rows.append([
            name, record["omega"].min() / 1e6, record["omega"].max() / 1e6,
            deviation / 1e3, record["newton"], record["time"],
        ])
        # All conditions agree to within the order-f2 ambiguity (paper §3).
        assert deviation < 2.0 * forcing_rate

    print()
    print(format_table(
        ["phase condition", "min f [MHz]", "max f [MHz]",
         "max |delta f| vs derivative [kHz]", "Newton iters",
         "wall time [s]"],
        rows,
        title="Ablation — phase-condition choice (f2 = 25 kHz ambiguity "
              "bound, paper §3)",
    ))
    write_csv(
        output_dir / "ablation_phase_condition.csv",
        ["condition_index", "min_f_hz", "max_f_hz"],
        [np.arange(len(rows)),
         [r[1] * 1e6 for r in rows], [r[2] * 1e6 for r in rows]],
    )
