"""Figure 12: phase error of transient simulation versus the WaMPDE.

Paper claims, all on the modified (air) VCO:

* "even at an early stage of the simulation, direct transient simulation
  with 50 points per cycle builds up significant phase error";
* "this is reduced considerably when 100 points are taken per cycle, but
  further along the error accumulates again, reaching many multiples of
  2 pi by the end of the simulation at 3 ms";
* "the WaMPDE achieves much tighter control on phase because the phase
  condition explicitly prevents build-up of error";
* "to achieve accuracy comparable to the WaMPDE, transient simulation
  required 1000 points per nominal cycle".

The shared ``fig12_data`` fixture runs all four engines once; this bench
re-times the WaMPDE envelope as its benchmark payload and prints the
phase-error rows.
"""

import numpy as np

from repro.analysis import phase_error_vs_reference
from repro.circuits.library import MemsVcoDae
from repro.utils import format_table, write_csv
from repro.wampde import solve_wampde_envelope


def test_fig12_phase_error(benchmark, fig12_data, air_ic, output_dir):
    params, samples, f0 = air_ic
    horizon = fig12_data["horizon"]
    forced = MemsVcoDae(params)

    # Benchmark payload: the WaMPDE envelope itself.
    from repro.wampde import WampdeEnvelopeOptions

    benchmark.pedantic(
        solve_wampde_envelope,
        args=(forced, samples, f0, 0.0, horizon,
              fig12_data["wampde"]["steps"]),
        kwargs={"options": WampdeEnvelopeOptions(integrator="trap")},
        rounds=1, iterations=1,
    )

    ode50 = fig12_data["transient"][50]["phase_error_cycles"]
    ode100 = fig12_data["transient"][100]["phase_error_cycles"]
    wampde = fig12_data["wampde"]["phase_error_cycles"]

    # The paper's ordering: ODE-50 >> ODE-100 >> WaMPDE.
    assert ode50 > 3.0 * ode100 > 3.0 * wampde
    # ~2nd-order trap: ODE needs ~1000 pts/cycle to reach WaMPDE accuracy.
    projected_1000 = ode100 * (100.0 / 1000.0) ** 2
    assert projected_1000 < 3.0 * wampde + 1e-3

    rows = [
        ["ODE: 50 pts/cycle", fig12_data["transient"][50]["steps"], ode50],
        ["ODE: 100 pts/cycle", fig12_data["transient"][100]["steps"], ode100],
        ["ODE: 1000 pts/cycle (reference)", fig12_data["reference_steps"],
         projected_1000],
        ["WaMPDE", fig12_data["wampde"]["steps"], wampde],
    ]
    print()
    print(format_table(
        ["method", "time steps", "peak phase error [cycles]"], rows,
        title=f"Fig 12 — accumulated phase error over {horizon*1e3:.2f} ms "
              "(modified VCO)",
    ))

    # Per-time phase-error series (the 'drift curves' behind Fig 12).
    t_ref, v_ref = fig12_data["reference"]
    env = fig12_data["wampde"]["envelope"]
    eval_times = np.linspace(0.0, horizon, 20000)
    rec = env.reconstruct("v(tank)", eval_times)
    times, err_wampde = phase_error_vs_reference(
        eval_times, rec, t_ref, v_ref, num_eval=60
    )
    write_csv(output_dir / "fig12_wampde_phase_error.csv",
              ["t_s", "phase_error_cycles"], [times, err_wampde])
