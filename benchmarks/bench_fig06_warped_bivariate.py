"""Figure 6: the *warped* bivariate FM form xhat2 + phi (paper eqs. 6-8).

Paper claims verified here:
* xhat2 and phi are compactly representable (xhat2 is a pure cosine; phi
  is a line plus one sinusoid);
* ``d phi/dt`` equals the instantaneous frequency of eq. (4);
* the alternative (xhat3, phi3) from the derivative phase condition
  differs in local frequency by exactly f2 — the order-f2 ambiguity.
"""

import numpy as np

from repro.signals import (
    fm_alternative_phi,
    fm_instantaneous_frequency,
    fm_signal,
    fm_warped_bivariate,
    fm_warping_phi,
    grid_undulation_count,
)
from repro.signals.fm import F2_PAPER
from repro.utils import format_table, write_csv


def generate_fig06():
    t1 = np.linspace(0.0, 1.0, 31, endpoint=False)
    t2 = np.linspace(0.0, 1.0 / F2_PAPER, 801, endpoint=False)
    surface = fm_warped_bivariate(t1[None, :], t2[:, None])
    t2_und = grid_undulation_count(surface, axis=0)

    # Identity x(t) = xhat2(phi(t), t) over several modulation periods.
    t = np.linspace(0.0, 3.0 / F2_PAPER, 30001)
    identity_error = float(np.max(np.abs(
        fm_signal(t) - fm_warped_bivariate(np.mod(fm_warping_phi(t), 1.0))
    )))

    # Local frequency = d phi / dt (numerical derivative).
    step = 1e-12
    tm = np.linspace(0.0, 1.0 / F2_PAPER, 400)
    dphi = (fm_warping_phi(tm + step) - fm_warping_phi(tm - step)) / (2 * step)
    freq_error = float(np.max(np.abs(dphi - fm_instantaneous_frequency(tm))))

    # Ambiguity: d(phi - phi3)/dt == f2.
    dphi3 = (fm_alternative_phi(tm + step) - fm_alternative_phi(tm - step)) / (
        2 * step
    )
    ambiguity = float(np.mean(dphi - dphi3))
    return surface, t2_und, identity_error, freq_error, ambiguity


def test_fig06_warped_bivariate(benchmark, output_dir):
    surface, t2_und, identity_error, freq_error, ambiguity = benchmark(
        generate_fig06
    )

    assert t2_und == 0  # xhat2 is constant along t2: perfectly compact
    assert identity_error < 1e-9
    assert freq_error < 1e3  # numerical differentiation noise only
    np.testing.assert_allclose(ambiguity, F2_PAPER, rtol=1e-3)

    rows = [
        ["undulations of xhat2 along t2 (Fig 5: >= 8)", t2_und],
        ["max |x(t) - xhat2(phi(t), t)| (eq. 8)", identity_error],
        ["max |dphi/dt - f_inst| [Hz] (eq. 4 vs 7)", freq_error],
        ["mean d(phi - phi3)/dt [Hz] (ambiguity; = f2)", ambiguity],
        ["f2 [Hz]", F2_PAPER],
    ]
    print()
    print(format_table(["quantity", "value"], rows,
                       title="Fig 6 — warped bivariate xhat2: compact + "
                             "consistent local frequency"))
    t2_axis = np.linspace(0.0, 1.0 / F2_PAPER, 801, endpoint=False)
    write_csv(output_dir / "fig06_warped_slice.csv",
              ["t2", "xhat2_at_t1_0"], [t2_axis, surface[:, 0]])
