"""Figure 3: the sawtooth evaluation path t_i = t mod T_i.

The paper's worked example: ``y(1.952 s) = yhat(0.012 s, 0.952 s)``.
The bench generates the path and verifies that evaluating the bivariate
form along it reproduces the univariate signal everywhere.
"""

import numpy as np

from repro.signals import two_tone_bivariate, two_tone_signal
from repro.utils import format_table, write_csv
from repro.wampde import sawtooth_path


def generate_fig03():
    t = np.linspace(0.0, 2.0, 4001)
    path = sawtooth_path(t, (0.02, 1.0))
    along_path = two_tone_bivariate(path[:, 0], path[:, 1])
    direct = two_tone_signal(t)
    return t, path, float(np.max(np.abs(along_path - direct)))


def test_fig03_sawtooth_path(benchmark, output_dir):
    t, path, max_error = benchmark(generate_fig03)

    # Paper's worked example: t = 1.952 -> (0.012, 0.952).
    example = sawtooth_path([1.952], (0.02, 1.0))[0]
    np.testing.assert_allclose(example, [0.012, 0.952], atol=1e-12)
    assert max_error < 1e-12

    rows = [
        ["path points generated", t.size],
        ["t1 at t=1.952 s (paper: 0.012)", example[0]],
        ["t2 at t=1.952 s (paper: 0.952)", example[1]],
        ["max |yhat(path) - y(t)|", max_error],
    ]
    print()
    print(format_table(["quantity", "value"], rows,
                       title="Fig 3 — sawtooth path in the t1-t2 plane"))
    write_csv(output_dir / "fig03_sawtooth_path.csv",
              ["t", "t1", "t2"], [t, path[:, 0], path[:, 1]])
