"""Figure 11: modified VCO bivariate capacitor voltage.

Paper claim: "unlike Figure 8, the amplitude of the oscillation changes
very little with the forcing" — corroborated by transient simulation.
"""

import numpy as np

from repro.circuits.library import MemsVcoDae
from repro.utils import format_table, write_csv
from repro.wampde import solve_wampde_envelope


def run_fig11(params, samples, f0):
    forced = MemsVcoDae(params)
    env = solve_wampde_envelope(forced, samples, f0, 0.0, 3e-3, 1200)
    return env.bivariate("v(tank)")


def test_fig11_modified_vco_bivariate(benchmark, air_ic, output_dir):
    params, samples, f0 = air_ic
    waveform = benchmark.pedantic(
        run_fig11, args=(params, samples, f0), rounds=1, iterations=1
    )

    amplitude = waveform.amplitude_vs_t2()
    variation = (amplitude.max() - amplitude.min()) / amplitude.mean()
    assert variation < 0.02  # "changes very little"

    idx = np.linspace(0, waveform.num_t2 - 1, 9).astype(int)
    rows = [[waveform.t2[i] * 1e3, amplitude[i]] for i in idx]
    print()
    print(format_table(
        ["t2 [ms]", "peak-to-peak [V]"], rows,
        title="Fig 11 — modified VCO bivariate voltage: near-constant "
              "amplitude",
    ))
    summary = [
        ["relative amplitude variation (Fig 8 variant: ~10x larger)",
         variation],
        ["mean amplitude [V]", amplitude.mean()],
    ]
    print(format_table(["quantity", "value"], summary))

    t1 = waveform.t1_grid()
    rows_idx = np.linspace(0, waveform.num_t2 - 1, 25).astype(int)
    write_csv(
        output_dir / "fig11_modified_vco_bivariate.csv",
        ["t1"] + [f"t2ms_{waveform.t2[i]*1e3:.2f}" for i in rows_idx],
        [t1] + [waveform.samples[i] for i in rows_idx],
    )
