"""Extension: the VCO's static tuning curve, measured by HB continuation.

DESIGN.md calibrates the varactor so the *static* law
``f(Vc) = f_base (1 + (gamma Vc^2)^2)`` hits the paper's anchors
(0.75 MHz @ 1.5 V; 2.0 MHz @ 2.7 V).  This bench measures the actual
oscillating frequency of the nonlinear circuit across the control range
(autonomous HB continuation) and tabulates it against the law — the
static backbone of Figs 7/10's dynamic excursions.
"""

import numpy as np
from dataclasses import replace

from repro.circuits.library import MemsVcoDae, T_NOMINAL, VcoParams
from repro.steadystate import oscillator_frequency_sweep
from repro.utils import format_table, write_csv


def run_sweep():
    base = VcoParams.vacuum()

    def factory(vc):
        return MemsVcoDae(
            replace(base, control_offset=vc), constant_control=True
        )

    # Step 0.1 V so the paper's 1.5 V anchor is an exact grid point.
    values = np.linspace(0.4, 2.7, 24)
    return base, oscillator_frequency_sweep(
        factory, values, period_guess=T_NOMINAL
    )


def test_static_tuning(benchmark, output_dir):
    base, sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    # Paper anchor: 0.75 MHz at 1.5 V holds exactly (it is calibrated
    # against the *oscillating* circuit).
    idx_15 = np.argmin(np.abs(sweep.values - 1.5))
    assert abs(sweep.frequencies[idx_15] - 0.75e6) / 0.75e6 < 0.01
    # At 2.7 V the static oscillation sits below the 2.0 MHz linear-tank
    # anchor: van der Pol pulling grows with the shrinking capacitance.
    # (Fig 7's dynamic run exceeds 2 MHz via mechanical overshoot.)
    idx_27 = np.argmin(np.abs(sweep.values - 2.7))
    assert 1.55e6 < sweep.frequencies[idx_27] < 2.0e6

    law = base.static_frequency(sweep.values) / np.sqrt(0.9557)
    rows = [
        [v, f / 1e6, l / 1e6, (f - l) / l, a]
        for v, f, l, a in zip(
            sweep.values, sweep.frequencies, law, sweep.amplitudes
        )
    ]
    print()
    print(format_table(
        ["Vc [V]", "measured f [MHz]", "tuning law [MHz]", "rel. dev.",
         "p2p amplitude [V]"],
        rows,
        title="VCO static tuning curve (anchors: 0.75 MHz @ 1.5 V, "
              "2.0 MHz @ 2.7 V)",
    ))
    write_csv(
        output_dir / "static_tuning.csv",
        ["vc", "frequency_hz", "amplitude"],
        [sweep.values, sweep.frequencies, sweep.amplitudes],
    )
