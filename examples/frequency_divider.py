"""Period multiplication: an oscillator as a divide-by-3 frequency divider.

Paper §4.1: "If omega_0 is a submultiple of omega_2, the period of the
response is a multiple of that of the forcing.  This phenomenon, period
multiplication, is not only often designed for (e.g., in frequency
dividing circuits), but is also observed in dynamic systems en route to
chaos."

A van der Pol oscillator (mu = 1, strong odd nonlinearity) driven near
three times its natural frequency entrains *superharmonically*: the
response locks to exactly f_inj / 3.  We find the divided solutions as
stable (3/f_inj)-periodic orbits via forced harmonic balance plus a
stroboscopic stability check, and map the divide-by-3 lock range.

Run:  python examples/frequency_divider.py
"""

import numpy as np

from repro.analysis import dominant_frequency
from repro.constants import TWO_PI
from repro.dae import VanDerPolDae
from repro.steadystate import (
    estimate_period_from_transient,
    find_locked_orbit,
    harmonic_balance_autonomous,
)
from repro.transient import TransientOptions, simulate_transient
from repro.utils import format_table


class InjectedVanDerPol(VanDerPolDae):
    """Van der Pol with a sinusoidal injection current on the y-equation."""

    def __init__(self, mu, amplitude, frequency):
        super().__init__(mu)
        self.amplitude = float(amplitude)
        self.frequency = float(frequency)

    def b(self, t):
        return np.array(
            [self.amplitude * np.sin(TWO_PI * self.frequency * t), 0.0]
        )

    def b_batch(self, times):
        times = np.asarray(times, dtype=float).ravel()
        out = np.zeros((times.size, 2))
        out[:, 0] = self.amplitude * np.sin(TWO_PI * self.frequency * times)
        return out


def free_running_cycle(mu=1.0, num_samples=25):
    """Settled limit cycle of the unforced oscillator."""
    dae = VanDerPolDae(mu)
    settle = simulate_transient(
        dae, [2.0, 0.0], 0.0, 120.0,
        TransientOptions(integrator="trap", dt=0.02),
    )
    period = estimate_period_from_transient(settle, key=0)
    tail = settle.t[-1] - period
    orbit = settle.sample(tail + period * np.arange(num_samples) / num_samples)
    return harmonic_balance_autonomous(
        dae, 1.0 / period, orbit, num_samples=num_samples
    )


def main():
    hb = free_running_cycle()
    f0 = hb.frequency
    print(f"free-running frequency f0 = {f0:.5f} (mu = 1)")

    rows = []
    for amplitude in (0.5, 1.0):
        for detune in (2.90, 2.95, 3.00, 3.05, 3.10):
            f_inj = f0 * detune
            dae = InjectedVanDerPol(1.0, amplitude, f_inj)
            # Divide-by-3: seek a stable orbit with period 3 / f_inj.
            solution = find_locked_orbit(
                dae, 3.0 / f_inj, hb.samples,
                min_peak_to_peak=2.5, phase_step=4, num_samples=49,
                stability_tolerance=0.2,
            )
            if solution is None:
                rows.append([amplitude, detune, "-", "not entrained"])
                continue
            # Verify the output really runs at f_inj / 3.
            period = solution.period
            times = np.linspace(0.0, 6 * period, 4096, endpoint=False)
            f_out = dominant_frequency(times, solution.evaluate(times)[:, 0])
            rows.append([
                amplitude, detune, f_out / f_inj,
                "LOCKED at f_inj/3" if abs(f_out * 3 - f_inj) < 0.02 * f_inj
                else "locked (other ratio)",
            ])

    print()
    print(format_table(
        ["injection amp", "f_inj / f0", "f_out / f_inj", "status"],
        rows,
        title="Divide-by-3 entrainment (paper §4.1 period multiplication)",
    ))


if __name__ == "__main__":
    main()
