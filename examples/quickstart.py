"""Quickstart: the paper's headline experiment in one page.

Simulates the MEMS-varactor VCO of Narayan & Roychowdhury (DAC 1999, §5)
with the WaMPDE envelope method and prints the local frequency versus
time — the data behind the paper's Figure 7.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    MemsVcoDae,
    T_NOMINAL,
    VcoParams,
    oscillator_initial_condition,
    solve_wampde_envelope,
)
from repro.utils import ascii_plot, format_table


def main():
    # 1. The paper's VCO: LC tank + cubic negative resistor + MEMS varactor
    #    in near vacuum, control voltage 1.5 V +- 1.1 V at a 40 us period.
    params = VcoParams.vacuum()

    # 2. Initial condition: steady oscillation of the *unforced* VCO
    #    (DC point -> settle -> autonomous harmonic balance).
    unforced = MemsVcoDae(params, constant_control=True)
    samples, f0 = oscillator_initial_condition(
        unforced, num_t1=25, period_guess=T_NOMINAL
    )
    print(f"free-running oscillation: {f0/1e6:.4f} MHz (paper: ~0.75 MHz)")

    # 3. WaMPDE envelope: march the warped multi-time system through 1.5
    #    periods of the control modulation.  The local frequency omega(t2)
    #    is computed *explicitly* as an unknown of the formulation.
    forced = MemsVcoDae(params)
    env = solve_wampde_envelope(forced, samples, f0, 0.0, 60e-6, 600)

    # 4. Report - the paper's Fig 7.
    idx = np.linspace(0, env.t2.size - 1, 13).astype(int)
    table = format_table(
        ["t2 [us]", "local frequency [MHz]"],
        [[env.t2[i] * 1e6, env.omega[i] / 1e6] for i in idx],
        title="VCO local frequency (paper Fig 7)",
    )
    print(table)
    print(ascii_plot(env.t2 * 1e6, env.omega / 1e6,
                     xlabel="t2 [us]", ylabel="f [MHz]"))
    swing = env.omega.max() / env.omega.min()
    print(f"frequency swing: {env.omega.min()/1e6:.2f} -> "
          f"{env.omega.max()/1e6:.2f} MHz  (x{swing:.2f}; "
          "paper: 'a factor of almost 3')")


if __name__ == "__main__":
    main()
