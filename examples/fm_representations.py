"""The paper's §3 story: why FM needs *warped* multi-time representation.

Walks through Figures 1-6 numerically:

1. two-tone AM signal: direct sampling costs 750 points, the bivariate
   form 225 — and recovers the signal exactly;
2. prototypical FM signal: the unwarped bivariate form undulates
   k/(2 pi) times along t2 (not compact), the warped form is a pure
   cosine (perfectly compact);
3. the local frequency dphi/dt equals the instantaneous frequency, up to
   the order-f2 ambiguity of the alternative warping (eq. 11).

Run:  python examples/fm_representations.py
"""

import numpy as np

from repro.signals import (
    bivariate_sample_count,
    fm_alternative_phi,
    fm_instantaneous_frequency,
    fm_signal,
    fm_unwarped_bivariate,
    fm_warped_bivariate,
    fm_warping_phi,
    grid_undulation_count,
    reconstruction_error_two_tone,
    transient_sample_count,
    two_tone_signal,
)
from repro.signals.fm import F0_PAPER, F2_PAPER, K_PAPER
from repro.utils import ascii_plot, format_table


def am_story():
    print("--- AM (Figs 1-3): plain multi-time works ---")
    t = np.linspace(0, 1, 750)
    print(ascii_plot(t[:150], two_tone_signal(t)[:150],
                     title="y(t), first 0.2 s of the paper's Fig 1"))
    rows = [
        ["direct samples per slow period", transient_sample_count()],
        ["bivariate grid samples", bivariate_sample_count()],
        ["max recovery error from 15x15 grid",
         reconstruction_error_two_tone(15)],
    ]
    print(format_table(["quantity", "value"], rows))


def fm_story():
    print("\n--- FM (Figs 4-6): warping required ---")
    t = np.linspace(0.0, 7e-5, 3001)
    print(ascii_plot(t * 1e6, fm_signal(t),
                     title="FM signal x(t) over 70 us (paper Fig 4)",
                     xlabel="t [us]"))

    # Undulation comparison along t2 at fixed t1.
    t2 = np.linspace(0.0, 1.0 / F2_PAPER, 801, endpoint=False)
    unwarped = fm_unwarped_bivariate(0.0, t2[:, None])
    warped = fm_warped_bivariate(
        np.linspace(0, 1, 31)[None, :], t2[:, None]
    )
    rows = [
        ["k/(2 pi) (oscillations along t2 of xhat1)", K_PAPER / (2 * np.pi)],
        ["extrema of xhat1 along t2 (Fig 5)",
         grid_undulation_count(unwarped.reshape(-1, 1), axis=0)],
        ["extrema of xhat2 along t2 (Fig 6)",
         grid_undulation_count(warped, axis=0)],
    ]
    print(format_table(["quantity", "value"], rows))

    # Local frequency and its ambiguity.
    step = 1e-12
    tm = np.linspace(0.0, 1.0 / F2_PAPER, 200)
    dphi = (fm_warping_phi(tm + step) - fm_warping_phi(tm - step)) / (2 * step)
    dphi3 = (fm_alternative_phi(tm + step) - fm_alternative_phi(tm - step)) / (
        2 * step
    )
    inst = fm_instantaneous_frequency(tm)
    rows = [
        ["max |dphi/dt - f_inst| [Hz]", float(np.max(np.abs(dphi - inst)))],
        ["mean (dphi/dt - dphi3/dt) [Hz]", float(np.mean(dphi - dphi3))],
        ["f2 (the allowed ambiguity) [Hz]", F2_PAPER],
        ["carrier f0 [Hz]", F0_PAPER],
    ]
    print(format_table(["quantity", "value"], rows,
                       title="local frequency: well-defined up to O(f2)"))
    print(ascii_plot(tm * 1e6, dphi / 1e6,
                     title="local frequency dphi/dt [MHz] (paper eq. 4)",
                     xlabel="t [us]"))


def main():
    am_story()
    fm_story()


if __name__ == "__main__":
    main()
