"""Batched control-voltage sweep of the MEMS VCO tuning curve.

The paper's Figs 7/10 tuning behaviour is a *family* of runs — one
free-running solve per control voltage.  This example drives the ensemble
batch axis end to end:

1. build one stacked-parameter :class:`~repro.circuits.library.MemsVcoDae`
   carrying all B control voltages (plus per-scenario members);
2. settle every scenario onto its limit cycle with **one** lock-step
   batched transient (:func:`repro.transient.simulate_transient_ensemble`);
3. refine each point with autonomous harmonic balance seeded from its own
   settled cycle (:func:`repro.steadystate.ensemble_frequency_sweep` does
   2+3 in one call);
4. compare against the serial loop of independent runs — the batched path
   wins because the per-step Python dispatch is paid once per ensemble,
   not once per scenario.

Run with::

    PYTHONPATH=src python examples/ensemble_sweep.py
"""

from dataclasses import replace

import numpy as np

from repro.circuits.library import MemsVcoDae, T_NOMINAL, VcoParams
from repro.dae import ensemble_from_factory
from repro.linalg.solver_core import SolverStats
from repro.steadystate import ensemble_frequency_sweep
from repro.transient import TransientOptions, simulate_transient, \
    simulate_transient_ensemble
from repro.utils import WallTimer, format_table


def main():
    base = VcoParams.vacuum()
    control_voltages = np.linspace(0.8, 2.4, 8)

    def factory(vc):
        return MemsVcoDae(
            replace(base, control_offset=vc), constant_control=True
        )

    def stacked_factory(values):
        return MemsVcoDae(
            replace(base, control_offset=np.asarray(values)),
            constant_control=True,
        )

    # --- the raw engine-level comparison: one batched transient versus the
    # serial loop over the same B scenarios ------------------------------
    ensemble = ensemble_from_factory(
        factory, control_voltages, stacked_factory
    )
    x0 = np.tile([1.0, 0.0, 0.0, 0.0], (control_voltages.size, 1))
    # kernel="python" on both sides: this comparison isolates the NumPy
    # lock-step batching win over per-scenario python dispatch.  The
    # compiled per-DAE sweep (kernel="auto"/"numba"/"c") accelerates the
    # serial runs far past either path — see benchmarks/README.md.
    options = TransientOptions(
        integrator="trap", dt=T_NOMINAL / 100, kernel="python"
    )
    horizon = 30 * T_NOMINAL

    with WallTimer() as batched_timer:
        batched = simulate_transient_ensemble(
            ensemble, x0, 0.0, horizon, options
        )
    with WallTimer() as serial_timer:
        for index, vc in enumerate(control_voltages):
            simulate_transient(factory(vc), x0[index], 0.0, horizon, options)
    print(
        f"{control_voltages.size}-scenario transient: batched "
        f"{batched_timer.elapsed:.2f} s vs serial loop "
        f"{serial_timer.elapsed:.2f} s "
        f"({serial_timer.elapsed / batched_timer.elapsed:.1f}x)"
    )
    print(f"ensemble solver: "
          f"{SolverStats(**batched.stats['solver']).summary()}")
    print()

    # --- the tuning curve through the full ensemble sweep ----------------
    with WallTimer() as sweep_timer:
        sweep = ensemble_frequency_sweep(
            factory, control_voltages, period_guess=T_NOMINAL,
            stacked_factory=stacked_factory,
        )
    print(format_table(
        ["Vc [V]", "frequency [MHz]", "amplitude [Vpp]"],
        [[vc, f / 1e6, a] for vc, f, a in
         zip(sweep.values, sweep.frequencies, sweep.amplitudes)],
        title=f"MEMS VCO tuning curve — {control_voltages.size} points in "
              f"{sweep_timer.elapsed:.2f} s (lock-step ensemble settle)",
    ))
    for vc, stats in zip(sweep.values, sweep.solver_stats):
        print(f"  Vc={vc:.2f} V HB: {SolverStats(**stats).summary()}")


if __name__ == "__main__":
    main()
