"""Phase-error accumulation: transient simulation versus the WaMPDE.

The paper's Fig 12 in miniature, on the modified (air-damped) VCO: direct
transient simulation at 50 and 100 points per cycle drifts in phase,
while the WaMPDE — whose phase condition re-anchors the oscillation
every slow-time step — stays phase-accurate at a fraction of the cost.

Run:  python examples/transient_phase_error.py          (~1 minute)
"""

import numpy as np

from repro import (
    MemsVcoDae,
    T_NOMINAL,
    TransientOptions,
    VcoParams,
    WampdeEnvelopeOptions,
    oscillator_initial_condition,
    simulate_transient,
    solve_wampde_envelope,
)
from repro.analysis import phase_error_vs_reference
from repro.utils import WallTimer, format_table

HORIZON = 0.3e-3  # 10% of the paper's 3 ms run, like Fig 12's window


def main():
    params = VcoParams.air()
    unforced = MemsVcoDae(params, constant_control=True)
    samples, f0 = oscillator_initial_condition(
        unforced, num_t1=25, period_guess=T_NOMINAL
    )
    forced = MemsVcoDae(params)

    print(f"reference: transient at 1000 pts/cycle over {HORIZON*1e3} ms ...")
    with WallTimer() as ref_timer:
        reference = simulate_transient(
            forced, samples[0], 0.0, HORIZON,
            TransientOptions(integrator="trap", dt=T_NOMINAL / 1000),
        )
    t_ref, v_ref = reference.t, reference["v(tank)"]

    rows = []
    for pts in (50, 100):
        with WallTimer() as timer:
            run = simulate_transient(
                forced, samples[0], 0.0, HORIZON,
                TransientOptions(integrator="trap", dt=T_NOMINAL / pts),
            )
        _t, err = phase_error_vs_reference(
            run.t, run["v(tank)"], t_ref, v_ref
        )
        rows.append([f"transient {pts} pts/cycle", run.stats["steps"],
                     timer.elapsed, float(np.abs(err).max())])

    with WallTimer() as timer:
        # Trapezoidal t2 stepping: second-order phase accuracy on this
        # short, validated horizon (the theta default trades a small
        # damping bias for robustness on long runs).
        env = solve_wampde_envelope(
            forced, samples, f0, 0.0, HORIZON, 100,
            WampdeEnvelopeOptions(integrator="trap"),
        )
    times = np.linspace(0.0, HORIZON, 40000)
    rec = env.reconstruct("v(tank)", times)
    _t, err = phase_error_vs_reference(times, rec, t_ref, v_ref)
    rows.append(["WaMPDE envelope", env.stats["steps"], timer.elapsed,
                 float(np.abs(err).max())])
    rows.append(["transient 1000 pts/cycle (reference)",
                 reference.stats["steps"], ref_timer.elapsed, 0.0])

    print()
    print(format_table(
        ["method", "steps", "wall time [s]", "peak phase error [cycles]"],
        rows,
        title=f"Phase error over {HORIZON*1e3:.1f} ms of the modified VCO "
              "(paper Fig 12)",
    ))
    wampde_time = rows[2][2]
    print(f"\nspeedup at comparable accuracy: "
          f"{ref_timer.elapsed / wampde_time:.0f}x "
          "(paper: 'two orders of magnitude')")


if __name__ == "__main__":
    main()
