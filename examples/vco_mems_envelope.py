"""Full VCO workflow: both paper variants, bivariate output, validation.

Reproduces the complete §5 study of the paper:

* vacuum VCO (Figs 7-9): 3x frequency swing, amplitude/shape modulation,
  WaMPDE-vs-transient overlay;
* air VCO (Figs 10-11): settling, reduced swing, constant amplitude.

Writes CSV series next to this script (examples/output/).

Run:  python examples/vco_mems_envelope.py
"""

from pathlib import Path

import numpy as np

from repro import (
    MemsVcoDae,
    T_NOMINAL,
    TransientOptions,
    VcoParams,
    oscillator_initial_condition,
    simulate_transient,
    solve_wampde_envelope,
)
from repro.analysis import max_error, rms_error
from repro.utils import ascii_plot, format_table, write_csv

OUTPUT = Path(__file__).parent / "output"


def run_variant(name, params, horizon, steps):
    """Initialise and envelope-simulate one VCO variant."""
    print(f"\n=== {name} VCO ===")
    unforced = MemsVcoDae(params, constant_control=True)
    samples, f0 = oscillator_initial_condition(
        unforced, num_t1=25, period_guess=T_NOMINAL
    )
    forced = MemsVcoDae(params)
    env = solve_wampde_envelope(forced, samples, f0, 0.0, horizon, steps)

    waveform = env.bivariate("v(tank)")
    amplitude = waveform.amplitude_vs_t2()
    print(format_table(
        ["quantity", "value"],
        [
            ["free-running f0 [MHz]", f0 / 1e6],
            ["min local frequency [MHz]", env.omega.min() / 1e6],
            ["max local frequency [MHz]", env.omega.max() / 1e6],
            ["frequency swing factor", env.omega.max() / env.omega.min()],
            ["amplitude variation [V]", amplitude.max() - amplitude.min()],
            ["total oscillation cycles", env.warping().total_cycles()],
        ],
    ))
    scale = 1e6 if horizon < 1e-3 else 1e3
    unit = "us" if horizon < 1e-3 else "ms"
    print(ascii_plot(env.t2 * scale, env.omega / 1e6,
                     title=f"local frequency [MHz] vs t2 [{unit}]"))
    write_csv(OUTPUT / f"vco_{name}_frequency.csv",
              ["t2_s", "frequency_hz"], [env.t2, env.omega])
    return samples, f0, env


def main():
    OUTPUT.mkdir(exist_ok=True)

    # Vacuum variant (paper Figs 7-9).
    vac = VcoParams.vacuum()
    samples, f0, env = run_variant("vacuum", vac, 60e-6, 600)

    # Validation against brute-force transient (paper Fig 9).
    forced = MemsVcoDae(vac)
    transient = simulate_transient(
        forced, samples[0], 0.0, 60e-6,
        TransientOptions(integrator="trap", dt=T_NOMINAL / 200),
    )
    times = np.linspace(0.0, 58e-6, 4001)
    rec = env.reconstruct("v(tank)", times)
    ref = transient.sample(times, "v(tank)")
    print(format_table(
        ["overlay metric (paper Fig 9)", "value"],
        [
            ["max |WaMPDE - transient| [V]", max_error(rec, ref)],
            ["rms difference [V]", rms_error(rec, ref)],
            ["signal amplitude [V]", ref.max() - ref.min()],
        ],
    ))
    write_csv(OUTPUT / "vco_vacuum_overlay.csv",
              ["t", "wampde", "transient"], [times, rec, ref])

    # Air variant (paper Figs 10-11).
    run_variant("air", VcoParams.air(), 3e-3, 1200)


if __name__ == "__main__":
    main()
