"""Periodic steady state by shooting with single-sweep monodromy.

Finds the free-running limit cycle of the paper's MEMS-varactor VCO
(unforced, control frozen at 1.5 V) by autonomous shooting.  The monodromy
matrix — the Jacobian of the period map, whose eigenvalues are the Floquet
multipliers — is propagated as a forward sensitivity *alongside the state
in a single transient sweep*, so every shooting-Newton iteration costs one
sweep instead of the ``n + 2`` finite-difference sweeps of the legacy
scheme.  The script runs both and prints the sweep economics.

Run:  python examples/shooting_periodic_steady_state.py
"""

import time

import numpy as np

from repro import MemsVcoDae, T_NOMINAL, VcoParams
from repro.steadystate import (
    estimate_period_from_transient,
    shooting_autonomous,
)
from repro.transient import TransientOptions, simulate_transient
from repro.utils import format_table


def main():
    # 1. The paper's VCO with the control voltage frozen: an autonomous
    #    oscillator free-running near 0.75 MHz.
    params = VcoParams.vacuum()
    dae = MemsVcoDae(params, constant_control=True)

    # 2. Rough starting point: settle a transient for 30 nominal cycles and
    #    estimate the period from zero crossings.
    settle = simulate_transient(
        dae, [1.0, 0.0, 0.0, 0.0], 0.0, 30 * T_NOMINAL,
        TransientOptions(integrator="trap", dt=T_NOMINAL / 150),
    )
    period_guess = estimate_period_from_transient(settle, key=0)
    print(f"transient period estimate: {1e6 * period_guess:.5f} us")

    # 3. Shooting with sensitivity-propagated (single-sweep) monodromy.
    runs = {}
    for method in ("sensitivity", "fd"):
        start = time.perf_counter()
        result = shooting_autonomous(
            dae, settle.final_state(), period_guess,
            anchor_index=1,           # anchor the inductor current
            steps_per_period=400,
            monodromy=method,
        )
        runs[method] = (result, time.perf_counter() - start)

    rows = []
    for method, (result, elapsed) in runs.items():
        rows.append([
            method,
            result.newton_iterations,
            result.transient_sweeps,
            f"{elapsed:.3f}",
            f"{1e6 * result.period:.6f}",
        ])
    print()
    print(format_table(
        ["monodromy", "newton iters", "transient sweeps", "wall [s]",
         "period [us]"],
        rows,
        title="Shooting on the free-running MEMS VCO "
              "(single-sweep vs finite-difference monodromy)",
    ))

    result, _ = runs["sensitivity"]
    assert result.transient_sweeps == result.newton_iterations + 1, \
        "sensitivity shooting must spend exactly one sweep per iteration"

    # 4. Floquet multipliers from the converged monodromy matrix: an
    #    autonomous orbit carries one multiplier pinned at 1 (phase
    #    invariance); the rest lie inside the unit circle for a stable
    #    limit cycle.
    multipliers = result.floquet_multipliers()
    order = np.argsort(-np.abs(multipliers))
    print("\nFloquet multipliers (|.| sorted):")
    for k in order:
        m = multipliers[k]
        print(f"  {m.real:+.6f} {m.imag:+.6f}j   |.| = {abs(m):.6f}")
    assert np.isclose(np.abs(multipliers).max(), 1.0, atol=0.02)

    freq = 1.0 / result.period
    print(f"\nconverged free-running frequency: {freq / 1e6:.6f} MHz "
          f"(paper: ~0.75 MHz)")


if __name__ == "__main__":
    main()
