"""Injection locking (mode locking / entrainment) of an oscillator.

Paper §4.1: "If omega_0 = omega_2, the response has the same period as the
external forcing frequency, and the system is mode-locked or entrained."

A mode-locked state *is* a stable T2-periodic solution of the forced
oscillator, so it can be found with the forced harmonic-balance engine:
for each injection frequency we search for a large-amplitude periodic
solution (retrying over initial phases — the locked phase offset is not
known a priori) and verify its stability by transient integration.  The
sweep maps the classic Arnold tongue: the locking range widens with
injection amplitude.

Run:  python examples/entrainment_locking.py
"""

import numpy as np

from repro.constants import TWO_PI
from repro.dae import VanDerPolDae
from repro.steadystate import (
    estimate_period_from_transient,
    find_locked_orbit,
    harmonic_balance_autonomous,
)
from repro.transient import TransientOptions, simulate_transient
from repro.utils import format_table


class InjectedVanDerPol(VanDerPolDae):
    """Van der Pol oscillator with a sinusoidal injection current."""

    def __init__(self, mu, amplitude, frequency):
        super().__init__(mu)
        self.amplitude = float(amplitude)
        self.frequency = float(frequency)

    def b(self, t):
        return np.array(
            [self.amplitude * np.sin(TWO_PI * self.frequency * t), 0.0]
        )

    def b_batch(self, times):
        times = np.asarray(times, dtype=float).ravel()
        out = np.zeros((times.size, 2))
        out[:, 0] = self.amplitude * np.sin(TWO_PI * self.frequency * times)
        return out


def free_running_cycle(mu=0.2, num_samples=25):
    """Limit cycle and frequency of the unforced oscillator."""
    dae = VanDerPolDae(mu)
    settle = simulate_transient(
        dae, [2.0, 0.0], 0.0, 80.0,
        TransientOptions(integrator="trap", dt=0.02),
    )
    period = estimate_period_from_transient(settle, key=0)
    tail = settle.t[-1] - period
    orbit = settle.sample(tail + period * np.arange(num_samples) / num_samples)
    hb = harmonic_balance_autonomous(
        dae, 1.0 / period, orbit, num_samples=num_samples
    )
    return hb


def main():
    hb = free_running_cycle()
    f0 = hb.frequency
    print(f"free-running frequency f0 = {f0:.5f}")

    detunings = np.arange(0.94, 1.062, 0.01)
    rows = []
    tongue = {}
    for amplitude in (0.05, 0.10, 0.15):
        locked_map = []
        for detune in detunings:
            f_inj = f0 * float(detune)
            dae = InjectedVanDerPol(0.2, amplitude, f_inj)
            result = find_locked_orbit(dae, 1.0 / f_inj, hb.samples)
            locked_map.append(result is not None)
        tongue[amplitude] = locked_map
        locked_detunings = detunings[np.asarray(locked_map)]
        if locked_detunings.size:
            rows.append([
                amplitude,
                locked_detunings.min(),
                locked_detunings.max(),
                locked_detunings.max() - locked_detunings.min(),
            ])
        else:
            rows.append([amplitude, "-", "-", 0.0])

    print()
    print(format_table(
        ["injection amplitude", "lock start (f/f0)", "lock end (f/f0)",
         "tongue width"],
        rows,
        title="Arnold tongue: locking range vs injection strength "
              "(paper §4.1 mode locking)",
    ))
    print("\nlock map over f_inj/f0 = "
          f"{detunings[0]:.2f}..{detunings[-1]:.2f}:")
    for amplitude, locked_map in tongue.items():
        line = "".join("L" if flag else "." for flag in locked_map)
        print(f"  amp={amplitude:.2f}:  {line}")


if __name__ == "__main__":
    main()
